// Syscall-intensive guests: the policy-table programs (bison, calc, screen)
// and the remaining Table 5 programs (gcc, vortex, pyramid).
//
// These programs are deliberately rich in system call surface, with
// rarely-exercised feature and error paths (verbose flags, REPL commands,
// the open_or_die -> die -> socket/sendto/kill chain) so that static
// analysis finds calls that training-based policies miss -- the mechanism
// behind Tables 1 and 2.
#include "apps/apps.h"
#include "apps/libtoy.h"
#include "tasm/assembler.h"

namespace asc::apps {

namespace {

void frame_in(tasm::Assembler& a, std::uint32_t extra_words) {
  a.subi(SP, 8 + 4 * extra_words);
  a.store(SP, 0, R1);
  a.store(SP, 4, R2);
}

void frame_out(tasm::Assembler& a, std::uint32_t extra_words) {
  a.addi(SP, 8 + 4 * extra_words);
}

void load_arg(tasm::Assembler& a, std::uint32_t index, isa::Reg dst = R1) {
  a.load(R11, SP, 4);
  a.load(dst, R11, static_cast<std::int32_t>(4 * index));
}

}  // namespace

binary::Image build_bison(os::Personality p) {
  tasm::Assembler a("bison");
  // bison <grammar> [out] [-v]
  a.func("main");
  frame_in(a, 6);  // [8]=infd [12]=len [16]=outfd [20]=rules [24]=i [28]=t0
  a.movi(R1, 022);
  a.call("sys_umask");
  a.call("sys_getuid");
  a.lea(R1, "bs_tv");
  a.movi(R2, 0);
  a.call("sys_gettimeofday");
  a.movi(R1, 0);
  a.call("sys_time");
  a.store(SP, 28, R0);

  load_arg(a, 0);
  a.movi(R2, 0);
  a.call("sys_access");
  a.cmpi(R0, 0);
  a.jge(".in_ok");
  a.movi(R1, 2);
  a.call("die");
  a.label(".in_ok");
  load_arg(a, 0);
  a.lea(R2, "bs_stat");
  a.call("sys_stat");
  load_arg(a, 0);
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("open_or_die");
  a.store(SP, 8, R0);
  a.mov(R1, R0);
  a.lea(R2, "bs_buf");
  a.movi(R3, 32768);
  a.call("sys_read");
  a.store(SP, 12, R0);
  a.load(R1, SP, 8);
  a.call("sys_close");

  // Count rules (lines).
  a.movi(R11, 0);  // i
  a.movi(R12, 0);  // rules
  a.load(R13, SP, 12);
  a.label(".count");
  a.cmp(R11, R13);
  a.jge(".counted");
  a.lea(R14, "bs_buf");
  a.add(R14, R11);
  a.loadb(R14, R14, 0);
  a.cmpi(R14, '\n');
  a.jnz(".nc");
  a.addi(R12, 1);
  a.label(".nc");
  a.addi(R11, 1);
  a.jmp(".count");
  a.label(".counted");
  a.store(SP, 20, R12);

  // Parser-table allocation: big grammars trip the allocator's madvise
  // path, small (training) grammars do not.
  a.load(R1, SP, 20);
  a.muli(R1, 96);
  a.addi(R1, 1024);
  a.call("malloc");

  // Temp file dance (getpid inside tmpname).
  a.lea(R1, "bs_tmp");
  a.call("tmpname");
  a.lea(R1, "bs_tmp");
  a.movi(R2, O_WRONLY | O_CREAT);
  a.movi(R3, 0600);
  a.call("open_or_die");
  a.push(R0);
  a.mov(R1, R0);
  a.lea(R2, "bs_tmp_msg");
  a.movi(R3, 5);
  a.call("sys_write");
  a.pop(R1);
  a.call("sys_close");
  a.lea(R1, "bs_tmp");
  a.call("sys_unlink");

  // Output file: argv[1] or "out.tab.c".
  a.load(R11, SP, 0);
  a.cmpi(R11, 2);
  a.jge(".have_out");
  a.lea(R1, "bs_outname");
  a.jmp(".open_out");
  a.label(".have_out");
  load_arg(a, 1);
  a.label(".open_out");
  a.movi(R2, O_WRONLY | O_CREAT | O_TRUNC);
  a.movi(R3, 0644);
  a.call("open_or_die");
  a.store(SP, 16, R0);
  // Header, then the echoed "tables", then rewrite the header via lseek.
  a.load(R1, SP, 16);
  a.lea(R2, "bs_hdr");
  a.movi(R3, 18);
  a.call("sys_write");
  a.load(R1, SP, 16);
  a.lea(R2, "bs_buf");
  a.load(R3, SP, 12);
  a.call("sys_write");
  a.load(R1, SP, 16);
  a.movi(R2, 0);
  a.movi(R3, 0);
  a.call("sys_lseek");
  a.load(R1, SP, 16);
  a.lea(R2, "bs_hdr");
  a.movi(R3, 18);
  a.call("sys_write");
  a.load(R1, SP, 16);
  a.lea(R2, "bs_stat");
  a.call("sys_fstat");

  // Verbose mode: argv[2] == "-v".
  a.load(R11, SP, 0);
  a.cmpi(R11, 3);
  a.jlt(".no_verbose");
  load_arg(a, 2);
  a.lea(R2, "bs_vflag");
  a.call("strcmp");
  a.cmpi(R0, 0);
  a.jnz(".no_verbose");
  a.call("diag");  // uname, sysconf, nanosleep
  a.load(R1, SP, 16);
  a.movi(R2, 1);
  a.movi(R3, 0);
  a.call("sys_fcntl");
  a.movi(R1, 1);
  a.call("sys_dup");
  a.push(R0);
  a.mov(R1, R0);
  a.lea(R2, "bs_vmsg");
  a.movi(R3, 8);
  a.call("sys_write");
  a.pop(R1);
  a.call("sys_close");
  // writev of two segments
  a.lea(R11, "bs_iov");
  a.lea(R12, "bs_hdr");
  a.store(R11, 0, R12);
  a.movi(R12, 18);
  a.store(R11, 4, R12);
  a.lea(R12, "bs_vmsg");
  a.store(R11, 8, R12);
  a.movi(R12, 8);
  a.store(R11, 12, R12);
  a.load(R1, SP, 16);
  a.lea(R2, "bs_iov");
  a.movi(R3, 2);
  a.call("sys_writev");
  // list /tmp
  a.lea(R1, "bs_tmpdir");
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("open_or_die");
  a.push(R0);
  a.mov(R1, R0);
  a.lea(R2, "bs_buf");
  a.movi(R3, 1024);
  a.call("sys_getdirentries");
  a.pop(R1);
  a.call("sys_close");
  a.label(".no_verbose");

  a.load(R1, SP, 16);
  a.call("sys_close");
  a.lea(R1, "bs_tv");
  a.movi(R2, 0);
  a.call("sys_gettimeofday");
  a.load(R1, SP, 20);
  a.call("print_num");
  a.lea(R1, "bs_done");
  a.call("print");
  frame_out(a, 6);
  a.movi(R0, 0);
  a.ret();

  a.rodata_cstr("bs_outname", "out.tab.c");
  a.rodata_cstr("bs_hdr", "/* bison tables */");
  a.rodata_cstr("bs_tmp_msg", "tmp\n");
  a.rodata_cstr("bs_vflag", "-v");
  a.rodata_cstr("bs_vmsg", "verbose\n");
  a.rodata_cstr("bs_tmpdir", "/tmp");
  a.rodata_cstr("bs_done", " rules\n");
  a.bss("bs_buf", 32772);
  a.bss("bs_stat", 16);
  a.bss("bs_tv", 8);
  a.bss("bs_tmp", 32);
  a.bss("bs_iov", 16);
  emit_libc(a, p);
  return a.link();
}

binary::Image build_calc(os::Personality p) {
  tasm::Assembler a("calc");
  // REPL over stdin. Lines: "add A B", "sub A B", "mul A B", "div A B",
  // "mod A B", plus feature commands (save/load/del/time/big/sys/dir/link/
  // cd/dupfd/pipe/net/perm/mk) that each exercise a different syscall
  // family. Training samples exercise only arithmetic.
  a.func("main");
  frame_in(a, 3);  // [8]=len [12]=pos [16]=line
  a.call("sig_init");
  a.movi(R1, 022);
  a.call("sys_umask");
  a.call("sys_getuid");
  a.movi(R1, 1);
  a.movi(R2, 0x5401);
  a.lea(R3, "cc_scratch");
  a.call("sys_ioctl");
  a.movi(R1, 0);
  a.lea(R2, "cc_in");
  a.movi(R3, 8192);
  a.call("sys_read");
  a.store(SP, 8, R0);
  a.movi(R11, 0);
  a.store(SP, 12, R11);
  a.label(".line_loop");
  a.load(R11, SP, 12);
  a.load(R12, SP, 8);
  a.cmp(R11, R12);
  a.jge(".done");
  // line = cc_in + pos
  a.lea(R13, "cc_in");
  a.add(R13, R11);
  a.store(SP, 16, R13);
  // find newline, NUL it, advance pos
  a.label(".scan");
  a.load(R12, SP, 8);
  a.cmp(R11, R12);
  a.jge(".eol");
  a.lea(R13, "cc_in");
  a.add(R13, R11);
  a.loadb(R14, R13, 0);
  a.cmpi(R14, '\n');
  a.jz(".eol");
  a.addi(R11, 1);
  a.jmp(".scan");
  a.label(".eol");
  a.lea(R13, "cc_in");
  a.add(R13, R11);
  a.movi(R14, 0);
  a.storeb(R13, 0, R14);
  a.addi(R11, 1);
  a.store(SP, 12, R11);
  a.load(R1, SP, 16);
  a.call("calc_handle");
  a.jmp(".line_loop");
  a.label(".done");
  frame_out(a, 3);
  a.movi(R0, 0);
  a.ret();

  // ---- calc_handle(r1 = NUL-terminated line) ----
  a.func("calc_handle");
  a.subi(SP, 16);  // [0]=tok1 [4]=tok2 [8]=tok3 [12]=scratch
  a.store(SP, 0, R1);
  a.movi(R11, 0);
  a.store(SP, 4, R11);
  a.store(SP, 8, R11);
  // tokenize: split on spaces (up to 3 tokens)
  a.mov(R12, R1);
  a.label(".t1");
  a.loadb(R13, R12, 0);
  a.cmpi(R13, 0);
  a.jz(".dispatch");
  a.cmpi(R13, ' ');
  a.jz(".t1_end");
  a.addi(R12, 1);
  a.jmp(".t1");
  a.label(".t1_end");
  a.movi(R13, 0);
  a.storeb(R12, 0, R13);
  a.addi(R12, 1);
  a.store(SP, 4, R12);
  a.label(".t2");
  a.loadb(R13, R12, 0);
  a.cmpi(R13, 0);
  a.jz(".dispatch");
  a.cmpi(R13, ' ');
  a.jz(".t2_end");
  a.addi(R12, 1);
  a.jmp(".t2");
  a.label(".t2_end");
  a.movi(R13, 0);
  a.storeb(R12, 0, R13);
  a.addi(R12, 1);
  a.store(SP, 8, R12);

  a.label(".dispatch");
  // helper macro: compare tok1 against a command and jump.
  auto cmd = [&](const std::string& name, const std::string& target) {
    a.load(R1, SP, 0);
    a.lea(R2, ("cc_" + name).c_str());
    a.call("strcmp");
    a.cmpi(R0, 0);
    a.jz(target);
  };
  cmd("add", ".c_add");
  cmd("sub", ".c_sub");
  cmd("mul", ".c_mul");
  cmd("div", ".c_div");
  cmd("mod", ".c_mod");
  cmd("save", ".c_save");
  cmd("load", ".c_load");
  cmd("del", ".c_del");
  cmd("time", ".c_time");
  cmd("big", ".c_big");
  cmd("sys", ".c_sys");
  cmd("dir", ".c_dir");
  cmd("link", ".c_link");
  cmd("cd", ".c_cd");
  cmd("dupfd", ".c_dup");
  cmd("pipe", ".c_pipe");
  cmd("net", ".c_net");
  cmd("perm", ".c_perm");
  cmd("mk", ".c_mk");
  a.jmp(".out");

  // Arithmetic: r11 = atoi(tok2), r0 = atoi(tok3), combine, print.
  auto arith_prologue = [&]() {
    a.load(R1, SP, 4);
    a.call("atoi");
    a.store(SP, 12, R0);
    a.load(R1, SP, 8);
    a.call("atoi");
    a.load(R11, SP, 12);
  };
  auto arith_epilogue = [&]() {
    a.mov(R1, R11);
    a.call("print_num");
    a.lea(R1, "libc_nl");
    a.call("print");
    a.jmp(".out");
  };
  a.label(".c_add");
  arith_prologue();
  a.add(R11, R0);
  arith_epilogue();
  a.label(".c_sub");
  arith_prologue();
  a.sub(R11, R0);
  arith_epilogue();
  a.label(".c_mul");
  arith_prologue();
  a.mul(R11, R0);
  arith_epilogue();
  a.label(".c_div");
  arith_prologue();
  a.cmpi(R0, 0);
  a.jz(".out");
  a.div(R11, R0);
  arith_epilogue();
  a.label(".c_mod");
  arith_prologue();
  a.cmpi(R0, 0);
  a.jz(".out");
  a.mod(R11, R0);
  arith_epilogue();

  a.label(".c_save");
  // Mode depends on whether an operand was given ("save private") -- a
  // genuinely multi-valued argument (Table 3's `mv` column).
  a.load(R11, SP, 4);
  a.cmpi(R11, 0);
  a.jz(".sv_pub");
  a.movi(R3, 0600);
  a.jmp(".sv_go");
  a.label(".sv_pub");
  a.movi(R3, 0644);
  a.label(".sv_go");
  a.lea(R1, "cc_file");
  a.movi(R2, O_WRONLY | O_CREAT | O_TRUNC);
  a.call("open_or_die");
  a.push(R0);
  a.mov(R1, R0);
  a.lea(R2, "cc_saved");
  a.movi(R3, 6);
  a.call("sys_write");
  a.pop(R1);
  a.call("sys_close");
  a.jmp(".out");

  a.label(".c_load");
  a.lea(R1, "cc_file");
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("sys_open");
  a.cmpi(R0, 0);
  a.jlt(".out");
  a.push(R0);
  a.mov(R1, R0);
  a.lea(R2, "cc_scratch");
  a.movi(R3, 64);
  a.call("sys_read");
  a.pop(R1);
  a.call("sys_close");
  a.jmp(".out");

  a.label(".c_del");
  a.lea(R1, "cc_file");
  a.call("sys_unlink");
  a.jmp(".out");

  a.label(".c_time");
  a.movi(R1, 0);
  a.call("sys_time");
  a.mov(R1, R0);
  a.call("print_num");
  a.lea(R1, "libc_nl");
  a.call("print");
  a.lea(R1, "cc_tv");
  a.movi(R2, 0);
  a.call("sys_gettimeofday");
  a.jmp(".out");

  a.label(".c_big");
  a.movi(R1, 0);
  a.movi(R2, 131072);
  a.movi(R3, 3);
  a.movi(R4, 0x22);
  a.call("sys_mmap");
  a.cmpi(R0, 0);
  a.jlt(".out");
  a.mov(R1, R0);
  a.movi(R2, 131072);
  a.call("sys_munmap");
  a.jmp(".out");

  a.label(".c_sys");
  a.call("diag");
  a.jmp(".out");

  a.label(".c_dir");
  a.lea(R1, "cc_tmpdir");
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("open_or_die");
  a.push(R0);
  a.mov(R1, R0);
  a.lea(R2, "cc_scratch");
  a.movi(R3, 256);
  a.call("sys_getdirentries");
  a.pop(R1);
  a.call("sys_close");
  a.jmp(".out");

  a.label(".c_link");
  a.lea(R1, "cc_file");
  a.lea(R2, "cc_linkname");
  a.call("sys_symlink");
  a.lea(R1, "cc_linkname");
  a.lea(R2, "cc_scratch");
  a.movi(R3, 64);
  a.call("sys_readlink");
  a.lea(R1, "cc_linkname");
  a.call("sys_unlink");
  a.jmp(".out");

  a.label(".c_cd");
  a.lea(R1, "cc_tmpdir");
  a.call("sys_chdir");
  a.lea(R1, "cc_scratch");
  a.movi(R2, 256);
  a.call("sys_getcwd");
  a.lea(R1, "cc_root");
  a.call("sys_chdir");
  a.jmp(".out");

  a.label(".c_dup");
  a.movi(R1, 1);
  a.call("sys_dup");
  a.cmpi(R0, 0);
  a.jlt(".out");
  a.push(R0);
  a.mov(R1, R0);
  a.lea(R2, "cc_saved");
  a.movi(R3, 6);
  a.call("sys_write");
  a.pop(R1);
  a.call("sys_close");
  a.jmp(".out");

  a.label(".c_pipe");
  a.lea(R1, "cc_scratch");
  a.call("sys_pipe");
  a.lea(R11, "cc_scratch");
  a.load(R1, R11, 0);
  a.call("sys_close");
  a.lea(R11, "cc_scratch");
  a.load(R1, R11, 4);
  a.call("sys_close");
  a.jmp(".out");

  a.label(".c_net");
  a.movi(R1, 2);
  a.movi(R2, 1);
  a.movi(R3, 0);
  a.call("sys_socket");
  a.cmpi(R0, 0);
  a.jlt(".out");
  a.push(R0);
  a.mov(R1, R0);
  a.lea(R2, "cc_scratch");
  a.movi(R3, 16);
  a.call("sys_connect");
  a.pop(R1);  // peek the socket fd
  a.push(R1);
  a.lea(R2, "cc_saved");
  a.movi(R3, 6);
  a.movi(R4, 0);
  a.movi(R5, 0);
  a.call("sys_sendto");
  a.pop(R11);
  a.push(R11);
  a.mov(R1, R11);
  a.lea(R2, "cc_scratch");
  a.movi(R3, 32);
  a.movi(R4, 0);
  a.movi(R5, 0);
  a.call("sys_recvfrom");
  a.pop(R1);
  a.call("sys_close");
  a.jmp(".out");

  a.label(".c_perm");
  a.lea(R1, "cc_file");
  a.movi(R2, 0600);
  a.call("sys_chmod");
  a.lea(R1, "cc_file");
  a.movi(R2, 0);
  a.call("sys_access");
  a.jmp(".out");

  a.label(".c_mk");
  a.lea(R1, "cc_dirname");
  a.movi(R2, 0755);
  a.call("sys_mkdir");
  a.lea(R1, "cc_dirname");
  a.call("sys_rmdir");
  a.jmp(".out");

  a.label(".out");
  a.addi(SP, 16);
  a.ret();

  a.rodata_cstr("cc_add", "add");
  a.rodata_cstr("cc_sub", "sub");
  a.rodata_cstr("cc_mul", "mul");
  a.rodata_cstr("cc_div", "div");
  a.rodata_cstr("cc_mod", "mod");
  a.rodata_cstr("cc_save", "save");
  a.rodata_cstr("cc_load", "load");
  a.rodata_cstr("cc_del", "del");
  a.rodata_cstr("cc_time", "time");
  a.rodata_cstr("cc_big", "big");
  a.rodata_cstr("cc_sys", "sys");
  a.rodata_cstr("cc_dir", "dir");
  a.rodata_cstr("cc_link", "link");
  a.rodata_cstr("cc_cd", "cd");
  a.rodata_cstr("cc_dupfd", "dupfd");
  a.rodata_cstr("cc_pipe", "pipe");
  a.rodata_cstr("cc_net", "net");
  a.rodata_cstr("cc_perm", "perm");
  a.rodata_cstr("cc_mk", "mk");
  a.rodata_cstr("cc_file", "/tmp/calcdata");
  a.rodata_cstr("cc_linkname", "/tmp/calclink");
  a.rodata_cstr("cc_tmpdir", "/tmp");
  a.rodata_cstr("cc_root", "/");
  a.rodata_cstr("cc_dirname", "/tmp/calcdir");
  a.rodata_cstr("cc_saved", "saved\n");
  a.bss("cc_in", 8196);
  a.bss("cc_scratch", 512);
  a.bss("cc_tv", 8);
  emit_libc(a, p);
  return a.link();
}

binary::Image build_screen(os::Personality p) {
  tasm::Assembler a("screen");
  // screen <session>: session-manager analog touching nearly the whole
  // syscall surface (Table 1's largest policy).
  a.func("main");
  frame_in(a, 3);  // [8]=ttyfd [12]=logfd [16]=scratch
  a.movi(R1, 077);
  a.call("sys_umask");
  a.call("sig_init");
  a.call("sys_getpid");
  a.call("sys_getuid");

  a.lea(R1, "sc_dir");
  a.movi(R2, 0755);
  a.call("sys_mkdir");
  a.lea(R1, "sc_dir");
  a.call("sys_chdir");
  a.lea(R1, "sc_buf");
  a.movi(R2, 256);
  a.call("sys_getcwd");

  // Terminal handling.
  a.lea(R1, "sc_tty");
  a.movi(R2, O_RDWR);
  a.movi(R3, 0);
  a.call("open_or_die");
  a.store(SP, 8, R0);
  a.mov(R1, R0);
  a.movi(R2, 0x5401);
  a.lea(R3, "sc_buf");
  a.call("sys_ioctl");
  a.load(R1, SP, 8);
  a.movi(R2, 1);
  a.movi(R3, 0);
  a.call("sys_fcntl");
  a.load(R1, SP, 8);
  a.call("sys_dup");
  a.cmpi(R0, 0);
  a.jlt(".no_dup");
  a.mov(R1, R0);
  a.call("sys_close");
  a.label(".no_dup");

  // Session log.
  a.lea(R1, "sc_log");
  a.movi(R2, O_WRONLY | O_CREAT | O_TRUNC);
  a.movi(R3, 0644);
  a.call("open_or_die");
  a.store(SP, 12, R0);
  a.load(R1, SP, 12);
  a.lea(R2, "sc_banner");
  a.movi(R3, 8);
  a.call("sys_write");
  // writev of banner + newline
  a.lea(R11, "sc_iov");
  a.lea(R12, "sc_banner");
  a.store(R11, 0, R12);
  a.movi(R12, 8);
  a.store(R11, 4, R12);
  a.lea(R12, "libc_nl");
  a.store(R11, 8, R12);
  a.movi(R12, 1);
  a.store(R11, 12, R12);
  a.load(R1, SP, 12);
  a.lea(R2, "sc_iov");
  a.movi(R3, 2);
  a.call("sys_writev");
  a.load(R1, SP, 12);
  a.movi(R2, 0);
  a.movi(R3, 0);
  a.call("sys_lseek");
  a.load(R1, SP, 12);
  a.lea(R2, "sc_buf");
  a.call("sys_fstat");
  a.load(R1, SP, 12);
  a.movi(R2, 64);
  a.call("sys_ftruncate");
  a.load(R1, SP, 12);
  a.call("sys_close");

  // Session bookkeeping: link, inspect, rotate.
  a.lea(R1, "sc_log");
  a.lea(R2, "sc_latest");
  a.call("sys_symlink");
  a.lea(R1, "sc_latest");
  a.lea(R2, "sc_buf");
  a.movi(R3, 64);
  a.call("sys_readlink");
  a.lea(R1, "sc_latest");
  a.movi(R2, 0);
  a.call("sys_access");
  a.lea(R1, "sc_log");
  a.lea(R2, "sc_stat");
  a.call("sys_stat");
  a.lea(R1, "sc_log");
  a.lea(R2, "sc_rotated");
  a.call("sys_rename");
  a.lea(R1, "sc_rotated");
  a.movi(R2, 0600);
  a.call("sys_chmod");
  a.lea(R1, "sc_latest");
  a.call("sys_unlink");

  // Remote-attach protocol.
  a.movi(R1, 2);
  a.movi(R2, 1);
  a.movi(R3, 0);
  a.call("sys_socket");
  a.cmpi(R0, 0);
  a.jlt(".no_net");
  a.store(SP, 16, R0);
  a.mov(R1, R0);
  a.lea(R2, "sc_buf");
  a.movi(R3, 16);
  a.call("sys_connect");
  a.load(R1, SP, 16);
  a.lea(R2, "sc_banner");
  a.movi(R3, 8);
  a.movi(R4, 0);
  a.movi(R5, 0);
  a.call("sys_sendto");
  a.load(R1, SP, 16);
  a.lea(R2, "sc_buf");
  a.movi(R3, 32);
  a.movi(R4, 0);
  a.movi(R5, 0);
  a.call("sys_recvfrom");
  a.load(R1, SP, 16);
  a.call("sys_close");
  a.label(".no_net");

  // Poll loop (two rounds), list sessions, probe init, misc.
  a.lea(R1, "libc_sleep_ts");
  a.movi(R2, 0);
  a.call("sys_nanosleep");
  a.lea(R1, "sc_dot");
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("open_or_die");
  a.push(R0);
  a.mov(R1, R0);
  a.lea(R2, "sc_buf");
  a.movi(R3, 256);
  a.call("sys_getdirentries");
  a.pop(R1);
  a.call("sys_close");
  a.movi(R1, 1);
  a.movi(R2, 0);
  a.call("sys_kill");
  a.movi(R1, 0);
  a.call("sys_time");
  a.lea(R1, "sc_tv");
  a.movi(R2, 0);
  a.call("sys_gettimeofday");
  a.lea(R1, "sc_buf");
  a.call("sys_pipe");
  a.lea(R11, "sc_buf");
  a.load(R1, R11, 0);
  a.call("sys_close");
  a.lea(R11, "sc_buf");
  a.load(R1, R11, 4);
  a.call("sys_close");
  // Shell spawn (ignored if /bin/true is not installed on the machine).
  a.lea(R1, "sc_shell");
  a.movi(R2, 0);
  a.call("sys_spawn");
  // Scratch dir create/remove.
  a.lea(R1, "sc_old");
  a.movi(R2, 0755);
  a.call("sys_mkdir");
  a.lea(R1, "sc_old");
  a.call("sys_rmdir");
  // Big allocation (madvise path) and diagnostics.
  a.movi(R1, 131072);
  a.call("malloc");
  a.call("diag");
  a.load(R1, SP, 8);
  a.call("sys_close");
  a.lea(R1, "sc_root");
  a.call("sys_chdir");
  a.lea(R1, "sc_done");
  a.call("print");
  frame_out(a, 3);
  a.movi(R0, 0);
  a.ret();

  a.rodata_cstr("sc_dir", "/tmp/screens");
  a.rodata_cstr("sc_tty", "/dev/tty");
  a.rodata_cstr("sc_log", "session.log");
  a.rodata_cstr("sc_latest", "latest");
  a.rodata_cstr("sc_rotated", "session.old");
  a.rodata_cstr("sc_old", "oldsessions");
  a.rodata_cstr("sc_banner", "screen \n");
  a.rodata_cstr("sc_dot", ".");
  a.rodata_cstr("sc_shell", "/bin/true");
  a.rodata_cstr("sc_root", "/");
  a.rodata_cstr("sc_done", "screen done\n");
  a.bss("sc_buf", 512);
  a.bss("sc_stat", 16);
  a.bss("sc_tv", 8);
  a.bss("sc_iov", 16);
  emit_libc(a, p);
  return a.link();
}

binary::Image build_gcc(os::Personality p) {
  tasm::Assembler a("gcc");
  // gcc <in> <out>: tokenizes the input (CPU loop) and writes one object
  // line per 512 input bytes (regular syscall activity).
  a.func("main");
  frame_in(a, 6);  // [8]=infd [12]=len [16]=outfd [20]=i [24]=hash [28]=pass
  load_arg(a, 0);
  a.lea(R2, "gc_stat");
  a.call("sys_stat");
  load_arg(a, 0);
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("open_or_die");
  a.store(SP, 8, R0);
  a.mov(R1, R0);
  a.lea(R2, "gc_buf");
  a.movi(R3, 32768);
  a.call("sys_read");
  a.store(SP, 12, R0);
  a.load(R1, SP, 8);
  a.call("sys_close");
  a.movi(R1, 4096);
  a.call("malloc");
  load_arg(a, 1);
  a.movi(R2, O_WRONLY | O_CREAT | O_TRUNC);
  a.movi(R3, 0644);
  a.call("open_or_die");
  a.store(SP, 16, R0);
  // 16 analysis/optimization passes over the input (the CPU side); object
  // chunks are emitted during the first pass only.
  a.movi(R11, 0);
  a.store(SP, 24, R11);
  a.movi(R5, 0);
  a.store(SP, 28, R5);  // pass counter
  a.label(".pass");
  a.load(R5, SP, 28);
  a.cmpi(R5, 16);
  a.jge(".tok_done");
  a.movi(R11, 0);
  a.store(SP, 20, R11);
  a.label(".tok");
  a.load(R11, SP, 20);
  a.load(R12, SP, 12);
  a.cmp(R11, R12);
  a.jge(".pass_end");
  // hash = hash*31 + byte (kept in the frame across the write call)
  a.lea(R13, "gc_buf");
  a.add(R13, R11);
  a.loadb(R14, R13, 0);
  a.load(R5, SP, 24);
  a.muli(R5, 31);
  a.add(R5, R14);
  a.mov(R13, R5);
  a.shri(R13, 7);
  a.xor_(R5, R13);
  a.store(SP, 24, R5);
  // every 512 bytes of pass 0, emit a chunk line
  a.load(R5, SP, 28);
  a.cmpi(R5, 0);
  a.jnz(".next");
  a.mov(R14, R11);
  a.andi(R14, 511);
  a.cmpi(R14, 511);
  a.jnz(".next");
  a.load(R1, SP, 16);
  a.lea(R2, "gc_chunk");
  a.movi(R3, 7);
  a.call("sys_write");
  a.label(".next");
  a.load(R11, SP, 20);
  a.addi(R11, 1);
  a.store(SP, 20, R11);
  a.jmp(".tok");
  a.label(".pass_end");
  a.load(R5, SP, 28);
  a.addi(R5, 1);
  a.store(SP, 28, R5);
  a.jmp(".pass");
  a.label(".tok_done");
  a.load(R1, SP, 16);
  a.lea(R2, "gc_stat");
  a.call("sys_fstat");
  a.load(R1, SP, 16);
  a.call("sys_close");
  load_arg(a, 1);
  a.movi(R2, 0644);
  a.call("sys_chmod");
  // assembler temp file dance
  a.lea(R1, "gc_tmp");
  a.call("tmpname");
  a.lea(R1, "gc_tmp");
  a.movi(R2, O_WRONLY | O_CREAT);
  a.movi(R3, 0600);
  a.call("open_or_die");
  a.push(R0);
  a.mov(R1, R0);
  a.lea(R2, "gc_chunk");
  a.movi(R3, 7);
  a.call("sys_write");
  a.pop(R1);
  a.call("sys_close");
  a.lea(R1, "gc_tmp");
  a.call("sys_unlink");
  a.load(R1, SP, 24);
  a.call("print_num");
  a.lea(R1, "libc_nl");
  a.call("print");
  frame_out(a, 6);
  a.movi(R0, 0);
  a.ret();
  a.rodata_cstr("gc_chunk", "chunk.\n");
  a.bss("gc_buf", 32772);
  a.bss("gc_stat", 16);
  a.bss("gc_tmp", 32);
  emit_libc(a, p);
  return a.link();
}

binary::Image build_vortex(os::Personality p) {
  tasm::Assembler a("vortex");
  // vortex <n>: hash-table inserts (CPU) with a periodic database snapshot
  // write, then a read-back verification pass.
  a.func("main");
  frame_in(a, 4);  // [8]=n [12]=dbfd [16]=i [20]=checksum
  a.movi(R11, 20000);
  a.store(SP, 8, R11);
  a.load(R11, SP, 0);
  a.cmpi(R11, 0);
  a.jz(".go");
  load_arg(a, 0);
  a.call("atoi");
  a.cmpi(R0, 0);
  a.jz(".go");
  a.store(SP, 8, R0);
  a.label(".go");
  a.movi(R1, 131072);  // big allocation -> madvise path
  a.call("malloc");
  a.lea(R1, "vx_db");
  a.movi(R2, O_WRONLY | O_CREAT | O_TRUNC);
  a.movi(R3, 0644);
  a.call("open_or_die");
  a.store(SP, 12, R0);
  a.movi(R11, 0);
  a.store(SP, 16, R11);
  a.store(SP, 20, R11);
  a.label(".ins");
  a.load(R11, SP, 16);
  a.load(R12, SP, 8);
  a.cmp(R11, R12);
  a.jge(".ins_done");
  // key = mix(i) with a short avalanche chain (the OO-database "method
  // dispatch" CPU component); slot = key & 1023; table[slot] = key
  a.mov(R13, R11);
  a.muli(R13, 1664525);
  a.addi(R13, 1013904223);
  a.mov(R14, R13);
  a.shri(R14, 15);
  a.xor_(R13, R14);
  a.muli(R13, 2246822519u);
  a.mov(R14, R13);
  a.shri(R14, 13);
  a.xor_(R13, R14);
  a.muli(R13, 3266489917u);
  a.mov(R14, R13);
  a.shri(R14, 16);
  a.xor_(R13, R14);
  a.mov(R14, R13);
  a.andi(R14, 1023);
  a.muli(R14, 8);
  a.lea(R5, "vx_tab");
  a.add(R5, R14);
  a.store(R5, 0, R13);
  a.store(R5, 4, R11);
  a.load(R5, SP, 20);
  a.add(R5, R13);
  a.store(SP, 20, R5);
  // snapshot every 8192 inserts
  a.mov(R14, R11);
  a.andi(R14, 8191);
  a.cmpi(R14, 8191);
  a.jnz(".ins_next");
  a.load(R1, SP, 12);
  a.lea(R2, "vx_tab");
  a.movi(R3, 512);
  a.call("sys_write");
  a.label(".ins_next");
  a.load(R11, SP, 16);
  a.addi(R11, 1);
  a.store(SP, 16, R11);
  a.jmp(".ins");
  a.label(".ins_done");
  a.load(R1, SP, 12);
  a.call("sys_close");
  // read-back verification
  a.lea(R1, "vx_db");
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("open_or_die");
  a.push(R0);
  a.mov(R1, R0);
  a.movi(R2, 0);
  a.movi(R3, 0);
  a.call("sys_lseek");
  a.pop(R1);
  a.push(R1);
  a.lea(R2, "vx_tab");
  a.movi(R3, 4096);
  a.call("sys_read");
  a.pop(R1);
  a.call("sys_close");
  a.load(R1, SP, 20);
  a.call("print_num");
  a.lea(R1, "libc_nl");
  a.call("print");
  frame_out(a, 4);
  a.movi(R0, 0);
  a.ret();
  a.rodata_cstr("vx_db", "/tmp/vortex.db");
  a.bss("vx_tab", 8192);
  emit_libc(a, p);
  return a.link();
}

binary::Image build_pyramid(os::Personality p) {
  tasm::Assembler a("pyramid");
  // pyramid <n>: multidimensional index creation. Per record: fill a 4KB
  // page (CPU), append it to the index file; every 16th record re-seeks to
  // rewrite the directory page. A verification pass re-reads a quarter of
  // the pages. Most syscall-dense program of the suite (Table 6's 7.92%).
  a.func("main");
  frame_in(a, 3);  // [8]=n [12]=fd [16]=i
  a.movi(R11, 150);
  a.store(SP, 8, R11);
  a.load(R11, SP, 0);
  a.cmpi(R11, 0);
  a.jz(".go");
  load_arg(a, 0);
  a.call("atoi");
  a.cmpi(R0, 0);
  a.jz(".go");
  a.store(SP, 8, R0);
  a.label(".go");
  a.lea(R1, "py_idx");
  a.movi(R2, O_RDWR | O_CREAT | O_TRUNC);
  a.movi(R3, 0644);
  a.call("open_or_die");
  a.store(SP, 12, R0);
  a.movi(R11, 0);
  a.store(SP, 16, R11);
  a.label(".wr");
  a.load(R11, SP, 16);
  a.load(R12, SP, 8);
  a.cmp(R11, R12);
  a.jge(".wr_done");
  // Fill the page: 1024 words of keyed content (the CPU part).
  a.movi(R13, 0);
  a.mov(R14, R11);
  a.muli(R14, 2654435761u);
  a.label(".fill");
  a.cmpi(R13, 4096);
  a.jge(".filled");
  a.lea(R5, "py_page");
  a.add(R5, R13);
  a.store(R5, 0, R14);
  a.muli(R14, 1664525);
  a.addi(R14, 1013904223);
  a.addi(R13, 4);
  a.jmp(".fill");
  a.label(".filled");
  // Directory rewrite every 16th record: seek to page 0 first.
  a.load(R11, SP, 16);
  a.andi(R11, 15);
  a.cmpi(R11, 0);
  a.jnz(".append");
  a.load(R1, SP, 12);
  a.movi(R2, 0);
  a.movi(R3, 0);
  a.call("sys_lseek");
  a.label(".append");
  a.load(R1, SP, 12);
  a.lea(R2, "py_page");
  a.movi(R3, 4096);
  a.call("sys_write");
  a.load(R11, SP, 16);
  a.addi(R11, 1);
  a.store(SP, 16, R11);
  a.jmp(".wr");
  a.label(".wr_done");
  // Verification: rewind, then read every 4th page.
  a.load(R1, SP, 12);
  a.movi(R2, 0);
  a.movi(R3, 0);
  a.call("sys_lseek");
  a.movi(R11, 0);
  a.store(SP, 16, R11);
  a.label(".rd");
  a.load(R11, SP, 16);
  a.load(R12, SP, 8);
  a.shri(R12, 2);
  a.cmp(R11, R12);
  a.jge(".rd_done");
  a.load(R1, SP, 12);
  a.lea(R2, "py_page");
  a.movi(R3, 4096);
  a.call("sys_read");
  a.load(R11, SP, 16);
  a.addi(R11, 1);
  a.store(SP, 16, R11);
  a.jmp(".rd");
  a.label(".rd_done");
  a.load(R1, SP, 12);
  a.lea(R2, "py_page");
  a.call("sys_fstat");
  a.load(R1, SP, 12);
  a.movi(R2, 4096);
  a.call("sys_ftruncate");
  a.load(R1, SP, 12);
  a.call("sys_close");
  a.lea(R1, "py_idx");
  a.call("sys_unlink");
  a.load(R1, SP, 8);
  a.call("print_num");
  a.lea(R1, "libc_nl");
  a.call("print");
  frame_out(a, 3);
  a.movi(R0, 0);
  a.ret();
  a.rodata_cstr("py_idx", "/tmp/pyr.idx");
  a.bss("py_page", 4096);
  emit_libc(a, p);
  return a.link();
}

}  // namespace asc::apps
