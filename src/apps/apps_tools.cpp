// Andrew-benchmark tools: cat, cp, rm, mv, chmod, mkdir, sort, gzip, tar.
#include "apps/apps.h"
#include "apps/libtoy.h"
#include "tasm/assembler.h"

namespace asc::apps {

namespace {

/// Emit the common prologue: save argc/argv into a frame with `extra_words`
/// additional slots. Frame layout: [sp+0]=argc [sp+4]=argv [sp+8..]=extras.
void frame_in(tasm::Assembler& a, std::uint32_t extra_words) {
  a.subi(SP, 8 + 4 * extra_words);
  a.store(SP, 0, R1);
  a.store(SP, 4, R2);
}

void frame_out(tasm::Assembler& a, std::uint32_t extra_words) {
  a.addi(SP, 8 + 4 * extra_words);
}

/// dst := argv[index] using the saved frame (clobbers r11).
void load_arg(tasm::Assembler& a, std::uint32_t index, isa::Reg dst = R1) {
  a.load(R11, SP, 4);
  a.load(dst, R11, static_cast<std::int32_t>(4 * index));
}

}  // namespace

binary::Image build_tool_cat(os::Personality p) {
  tasm::Assembler a("cat");
  a.func("main");
  frame_in(a, 2);  // [8]=i [12]=fd
  a.movi(R11, 0);
  a.store(SP, 8, R11);
  a.label(".arg_loop");
  a.load(R11, SP, 8);
  a.load(R12, SP, 0);
  a.cmp(R11, R12);
  a.jge(".done");
  a.load(R12, SP, 4);
  a.muli(R11, 4);
  a.add(R12, R11);
  a.load(R1, R12, 0);
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("open_or_die");
  a.store(SP, 12, R0);
  a.label(".read_loop");
  a.load(R1, SP, 12);
  a.lea(R2, "cat_buf");
  a.movi(R3, 16384);
  a.call("sys_read");
  a.cmpi(R0, 0);
  a.jle(".close");
  a.mov(R3, R0);
  a.movi(R1, 1);
  a.lea(R2, "cat_buf");
  a.call("sys_write");
  a.jmp(".read_loop");
  a.label(".close");
  a.load(R1, SP, 12);
  a.call("sys_close");
  a.load(R11, SP, 8);
  a.addi(R11, 1);
  a.store(SP, 8, R11);
  a.jmp(".arg_loop");
  a.label(".done");
  frame_out(a, 2);
  a.movi(R0, 0);
  a.ret();
  a.bss("cat_buf", 16384);
  emit_libc(a, p);
  return a.link();
}

binary::Image build_tool_cp(os::Personality p) {
  tasm::Assembler a("cp");
  a.func("main");
  frame_in(a, 2);  // [8]=src fd [12]=dst fd
  load_arg(a, 0);
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("open_or_die");
  a.store(SP, 8, R0);
  load_arg(a, 1);
  a.movi(R2, O_WRONLY | O_CREAT | O_TRUNC);
  a.movi(R3, 0644);
  a.call("open_or_die");
  a.store(SP, 12, R0);
  a.label(".loop");
  a.load(R1, SP, 8);
  a.lea(R2, "cp_buf");
  a.movi(R3, 16384);
  a.call("sys_read");
  a.cmpi(R0, 0);
  a.jle(".done");
  a.mov(R3, R0);
  a.load(R1, SP, 12);
  a.lea(R2, "cp_buf");
  a.call("sys_write");
  a.jmp(".loop");
  a.label(".done");
  a.load(R1, SP, 8);
  a.call("sys_close");
  a.load(R1, SP, 12);
  a.call("sys_close");
  load_arg(a, 1);
  a.movi(R2, 0644);
  a.call("sys_chmod");
  frame_out(a, 2);
  a.movi(R0, 0);
  a.ret();
  a.bss("cp_buf", 16384);
  emit_libc(a, p);
  return a.link();
}

binary::Image build_tool_rm(os::Personality p) {
  tasm::Assembler a("rm");
  a.func("main");
  frame_in(a, 1);  // [8]=i
  a.movi(R11, 0);
  a.store(SP, 8, R11);
  a.label(".loop");
  a.load(R11, SP, 8);
  a.load(R12, SP, 0);
  a.cmp(R11, R12);
  a.jge(".done");
  a.load(R12, SP, 4);
  a.muli(R11, 4);
  a.add(R12, R11);
  a.load(R1, R12, 0);
  a.call("sys_unlink");  // rm -f semantics: errors ignored
  a.load(R11, SP, 8);
  a.addi(R11, 1);
  a.store(SP, 8, R11);
  a.jmp(".loop");
  a.label(".done");
  frame_out(a, 1);
  a.movi(R0, 0);
  a.ret();
  emit_libc(a, p);
  return a.link();
}

binary::Image build_tool_mv(os::Personality p) {
  tasm::Assembler a("mv");
  a.func("main");
  frame_in(a, 0);
  a.load(R12, SP, 4);
  a.load(R1, R12, 0);
  a.load(R2, R12, 4);
  a.call("sys_rename");
  a.cmpi(R0, 0);
  a.jge(".ok");
  a.movi(R1, 1);
  a.call("die");
  a.label(".ok");
  frame_out(a, 0);
  a.movi(R0, 0);
  a.ret();
  emit_libc(a, p);
  return a.link();
}

binary::Image build_tool_chmod(os::Personality p) {
  tasm::Assembler a("chmod");
  a.func("main");
  frame_in(a, 1);  // [8]=mode
  load_arg(a, 0);
  a.call("atoi");
  a.store(SP, 8, R0);
  load_arg(a, 1);
  a.load(R2, SP, 8);
  a.call("sys_chmod");
  a.cmpi(R0, 0);
  a.jge(".ok");
  a.movi(R1, 1);
  a.call("die");
  a.label(".ok");
  frame_out(a, 1);
  a.movi(R0, 0);
  a.ret();
  emit_libc(a, p);
  return a.link();
}

binary::Image build_tool_mkdir(os::Personality p) {
  tasm::Assembler a("mkdir");
  a.func("main");
  frame_in(a, 1);  // [8]=i
  a.movi(R11, 0);
  a.store(SP, 8, R11);
  a.label(".loop");
  a.load(R11, SP, 8);
  a.load(R12, SP, 0);
  a.cmp(R11, R12);
  a.jge(".done");
  a.load(R12, SP, 4);
  a.muli(R11, 4);
  a.add(R12, R11);
  a.load(R1, R12, 0);
  a.movi(R2, 0755);
  a.call("sys_mkdir");
  a.load(R11, SP, 8);
  a.addi(R11, 1);
  a.store(SP, 8, R11);
  a.jmp(".loop");
  a.label(".done");
  frame_out(a, 1);
  a.movi(R0, 0);
  a.ret();
  emit_libc(a, p);
  return a.link();
}

binary::Image build_tool_sort(os::Personality p) {
  tasm::Assembler a("sort");
  // sort <file>: read (<= 60KB), split lines, bubble-sort pointers with
  // strcmp, print the sorted lines.
  a.func("main");
  frame_in(a, 4);  // [8]=fd [12]=len [16]=nlines [20]=scratch
  load_arg(a, 0);
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("open_or_die");
  a.store(SP, 8, R0);
  a.mov(R1, R0);
  a.lea(R2, "sort_buf");
  a.movi(R3, 61440);
  a.call("sys_read");
  a.store(SP, 12, R0);
  a.load(R1, SP, 8);
  a.call("sys_close");

  // Split lines: record starts in sort_lines, replace '\n' with NUL.
  a.movi(R11, 0);  // cursor
  a.movi(R12, 0);  // nlines
  a.lea(R13, "sort_lines");
  a.label(".split_start");
  a.load(R14, SP, 12);
  a.cmp(R11, R14);
  a.jge(".split_done");
  a.lea(R14, "sort_buf");
  a.add(R14, R11);
  a.store(R13, 0, R14);
  a.addi(R13, 4);
  a.addi(R12, 1);
  a.label(".scan");
  a.load(R14, SP, 12);
  a.cmp(R11, R14);
  a.jge(".split_done");
  a.lea(R14, "sort_buf");
  a.add(R14, R11);
  a.loadb(R14, R14, 0);
  a.cmpi(R14, '\n');
  a.jz(".eol");
  a.addi(R11, 1);
  a.jmp(".scan");
  a.label(".eol");
  a.lea(R14, "sort_buf");
  a.add(R14, R11);
  a.movi(R5, 0);
  a.storeb(R14, 0, R5);
  a.addi(R11, 1);
  a.jmp(".split_start");
  a.label(".split_done");
  a.store(SP, 16, R12);

  // Bubble sort.
  a.label(".pass");
  a.movi(R11, 0);
  a.store(SP, 20, R11);  // swapped = 0
  a.movi(R12, 0);        // j
  a.label(".inner");
  a.load(R13, SP, 16);
  a.subi(R13, 1);
  a.cmp(R12, R13);
  a.jge(".pass_end");
  a.push(R12);
  a.lea(R13, "sort_lines");
  a.mov(R14, R12);
  a.muli(R14, 4);
  a.add(R13, R14);
  a.load(R1, R13, 0);
  a.load(R2, R13, 4);
  a.call("strcmp");
  a.pop(R12);
  a.cmpi(R0, 0);
  a.jle(".no_swap");
  a.lea(R13, "sort_lines");
  a.mov(R14, R12);
  a.muli(R14, 4);
  a.add(R13, R14);
  a.load(R11, R13, 0);
  a.load(R14, R13, 4);
  a.store(R13, 0, R14);
  a.store(R13, 4, R11);
  a.movi(R11, 1);
  a.store(SP, 20, R11);
  a.label(".no_swap");
  a.addi(R12, 1);
  a.jmp(".inner");
  a.label(".pass_end");
  a.load(R11, SP, 20);
  a.cmpi(R11, 1);
  a.jz(".pass");

  // Print.
  a.movi(R12, 0);
  a.store(SP, 20, R12);
  a.label(".print");
  a.load(R12, SP, 20);
  a.load(R13, SP, 16);
  a.cmp(R12, R13);
  a.jge(".done");
  a.lea(R13, "sort_lines");
  a.mov(R14, R12);
  a.muli(R14, 4);
  a.add(R13, R14);
  a.load(R1, R13, 0);
  a.call("print");
  a.lea(R1, "libc_nl");
  a.call("print");
  a.load(R12, SP, 20);
  a.addi(R12, 1);
  a.store(SP, 20, R12);
  a.jmp(".print");
  a.label(".done");
  frame_out(a, 4);
  a.movi(R0, 0);
  a.ret();
  a.bss("sort_buf", 61444);
  a.bss("sort_lines", 8192);
  emit_libc(a, p);
  return a.link();
}

binary::Image build_gzip(os::Personality p) {
  tasm::Assembler a("gzip");
  // gzip <file>    : RLE-compress into "<file>z", unlink the original.
  // gzip -d <file> : decompress "<file>z"-style input into the name minus
  //                  its final character.
  // RLE stream: byte pairs {count, value}.
  a.func("main");
  frame_in(a, 7);  // [8]=fd [12]=len [16]=mode [20]=inpath [24]=i [28]=outpos [32]=scratch
  a.movi(R11, 0);
  a.store(SP, 16, R11);
  a.load(R11, SP, 0);
  a.cmpi(R11, 2);
  a.jlt(".have_mode");
  load_arg(a, 0);
  a.lea(R2, "gz_dflag");
  a.call("strcmp");
  a.cmpi(R0, 0);
  a.jnz(".have_mode");
  a.movi(R11, 1);
  a.store(SP, 16, R11);
  a.label(".have_mode");

  // inpath = argv[mode]
  a.load(R11, SP, 16);
  a.load(R12, SP, 4);
  a.muli(R11, 4);
  a.add(R12, R11);
  a.load(R1, R12, 0);
  a.store(SP, 20, R1);
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("open_or_die");
  a.store(SP, 8, R0);
  a.mov(R1, R0);
  a.lea(R2, "gz_in");
  a.movi(R3, 61440);
  a.call("sys_read");
  a.store(SP, 12, R0);
  a.load(R1, SP, 8);
  a.call("sys_close");

  // Transform (no calls inside the loops; registers persist).
  a.movi(R11, 0);
  a.store(SP, 24, R11);  // i = 0
  a.store(SP, 28, R11);  // outpos = 0
  a.load(R11, SP, 16);
  a.cmpi(R11, 1);
  a.jz(".decompress");

  // ---- compress ----
  a.load(R11, SP, 24);  // i
  a.load(R12, SP, 12);  // len
  a.load(R4, SP, 28);   // outpos
  a.label(".c_loop");
  a.cmp(R11, R12);
  a.jge(".c_done");
  a.lea(R13, "gz_in");
  a.add(R13, R11);
  a.loadb(R14, R13, 0);  // value
  a.movi(R5, 0);         // run count
  a.label(".c_run");
  a.cmp(R11, R12);
  a.jge(".c_emit");
  a.cmpi(R5, 255);
  a.jge(".c_emit");
  a.lea(R13, "gz_in");
  a.add(R13, R11);
  a.loadb(R3, R13, 0);
  a.cmp(R3, R14);
  a.jnz(".c_emit");
  a.addi(R11, 1);
  a.addi(R5, 1);
  a.jmp(".c_run");
  a.label(".c_emit");
  a.lea(R13, "gz_out");
  a.add(R13, R4);
  a.storeb(R13, 0, R5);
  a.storeb(R13, 1, R14);
  a.addi(R4, 2);
  a.jmp(".c_loop");
  a.label(".c_done");
  a.store(SP, 28, R4);
  // outname = inpath + "z"
  a.lea(R1, "gz_name");
  a.load(R2, SP, 20);
  a.call("strcpy");
  a.lea(R1, "gz_name");
  a.lea(R2, "gz_suffix");
  a.call("strcat");
  a.jmp(".write_out");

  // ---- decompress ----
  a.label(".decompress");
  a.load(R11, SP, 24);
  a.load(R12, SP, 12);
  a.load(R4, SP, 28);
  a.label(".d_loop");
  a.cmp(R11, R12);
  a.jge(".d_done");
  a.lea(R13, "gz_in");
  a.add(R13, R11);
  a.loadb(R5, R13, 0);   // count
  a.loadb(R14, R13, 1);  // value
  a.addi(R11, 2);
  a.label(".d_emit");
  a.cmpi(R5, 0);
  a.jz(".d_loop");
  a.lea(R13, "gz_out");
  a.add(R13, R4);
  a.storeb(R13, 0, R14);
  a.addi(R4, 1);
  a.subi(R5, 1);
  a.jmp(".d_emit");
  a.label(".d_done");
  a.store(SP, 28, R4);
  // outname = inpath minus final char
  a.lea(R1, "gz_name");
  a.load(R2, SP, 20);
  a.call("strcpy");
  a.lea(R1, "gz_name");
  a.call("strlen");
  a.cmpi(R0, 1);
  a.jle(".write_out");
  a.lea(R13, "gz_name");
  a.add(R13, R0);
  a.subi(R13, 1);
  a.movi(R14, 0);
  a.storeb(R13, 0, R14);

  // ---- write the output, fix permissions, remove the input ----
  a.label(".write_out");
  a.lea(R1, "gz_name");
  a.movi(R2, O_WRONLY | O_CREAT | O_TRUNC);
  a.movi(R3, 0644);
  a.call("open_or_die");
  a.store(SP, 8, R0);
  a.mov(R1, R0);
  a.lea(R2, "gz_out");
  a.load(R3, SP, 28);
  a.call("sys_write");
  a.load(R1, SP, 8);
  a.call("sys_close");
  // Final permissions depend on the direction (compress -> world readable,
  // decompress -> private): a multi-valued argument (Table 3's `mv`).
  a.load(R11, SP, 16);
  a.cmpi(R11, 1);
  a.jz(".priv_mode");
  a.movi(R2, 0644);
  a.jmp(".do_chmod");
  a.label(".priv_mode");
  a.movi(R2, 0600);
  a.label(".do_chmod");
  a.lea(R1, "gz_name");
  a.call("sys_chmod");
  a.load(R1, SP, 20);
  a.call("sys_unlink");
  frame_out(a, 7);
  a.movi(R0, 0);
  a.ret();
  a.rodata_cstr("gz_dflag", "-d");
  a.rodata_cstr("gz_suffix", "z");
  a.bss("gz_in", 61444);
  a.bss("gz_out", 131072);
  a.bss("gz_name", 256);
  emit_libc(a, p);
  return a.link();
}

binary::Image build_tar(os::Personality p) {
  tasm::Assembler a("tar");
  // tar c <archive> <dir> : archive every regular file in <dir>.
  // tar x <archive> <dir> : extract into <dir> (created if needed).
  // Record: {u32 namelen}{name}{u32 datalen}{data}, repeated.
  a.func("main");
  frame_in(a, 8);  // [8]=archfd [12]=nameslen/total [16]=pos [20]=filefd
                   // [24]=nlen [28]=dlen [32]=scratch [36]=scratch2
  a.movi(R1, 022);
  a.call("sys_umask");
  load_arg(a, 0);
  a.lea(R2, "tar_cflag");
  a.call("strcmp");
  a.cmpi(R0, 0);
  a.jnz(".extract");

  // ---- create ----
  load_arg(a, 2);
  a.movi(R2, 0);
  a.call("sys_access");
  a.cmpi(R0, 0);
  a.jge(".dir_ok");
  a.movi(R1, 1);
  a.call("die");
  a.label(".dir_ok");
  load_arg(a, 2);
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("open_or_die");
  a.store(SP, 20, R0);
  a.mov(R1, R0);
  a.lea(R2, "tar_names");
  a.movi(R3, 4096);
  a.call("sys_getdirentries");
  a.store(SP, 12, R0);
  a.load(R1, SP, 20);
  a.call("sys_close");
  load_arg(a, 1);
  a.movi(R2, O_WRONLY | O_CREAT | O_TRUNC);
  a.movi(R3, 0644);
  a.call("open_or_die");
  a.store(SP, 8, R0);
  a.movi(R11, 0);
  a.store(SP, 16, R11);  // pos in names
  a.label(".c_loop");
  a.load(R11, SP, 16);
  a.load(R12, SP, 12);
  a.cmp(R11, R12);
  a.jge(".c_done");
  // name = tar_names + pos
  a.lea(R1, "tar_names");
  a.add(R1, R11);
  a.call("strlen");
  a.store(SP, 24, R0);  // nlen
  // full path = dir + "/" + name
  a.lea(R1, "tar_path");
  load_arg(a, 2, R2);
  a.call("strcpy");
  a.lea(R1, "tar_path");
  a.lea(R2, "tar_slash");
  a.call("strcat");
  a.lea(R1, "tar_path");
  a.lea(R2, "tar_names");
  a.load(R11, SP, 16);
  a.add(R2, R11);
  a.call("strcat");
  // read the file
  a.lea(R1, "tar_path");
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("open_or_die");
  a.store(SP, 20, R0);
  a.mov(R1, R0);
  a.lea(R2, "tar_data");
  a.movi(R3, 16384);
  a.call("sys_read");
  a.store(SP, 28, R0);  // dlen
  a.load(R1, SP, 20);
  a.call("sys_close");
  // header
  a.lea(R11, "tar_hdr");
  a.load(R12, SP, 24);
  a.store(R11, 0, R12);
  a.load(R12, SP, 28);
  a.store(R11, 4, R12);
  a.load(R1, SP, 8);
  a.lea(R2, "tar_hdr");
  a.movi(R3, 8);
  a.call("sys_write");
  a.load(R1, SP, 8);
  a.lea(R2, "tar_names");
  a.load(R11, SP, 16);
  a.add(R2, R11);
  a.load(R3, SP, 24);
  a.call("sys_write");
  a.load(R1, SP, 8);
  a.lea(R2, "tar_data");
  a.load(R3, SP, 28);
  a.call("sys_write");
  // pos += nlen + 1
  a.load(R11, SP, 16);
  a.load(R12, SP, 24);
  a.add(R11, R12);
  a.addi(R11, 1);
  a.store(SP, 16, R11);
  a.jmp(".c_loop");
  a.label(".c_done");
  a.load(R1, SP, 8);
  a.lea(R2, "tar_hdr");
  a.call("sys_fstat");
  a.load(R1, SP, 8);
  a.call("sys_close");
  load_arg(a, 1);
  a.lea(R2, "tar_hdr");
  a.call("sys_stat");
  a.lea(R1, "tar_done_msg");
  a.call("print");
  frame_out(a, 8);
  a.movi(R0, 0);
  a.ret();

  // ---- extract ----
  a.label(".extract");
  load_arg(a, 2);
  a.movi(R2, 0755);
  a.call("sys_mkdir");  // may already exist
  load_arg(a, 1);
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("open_or_die");
  a.store(SP, 8, R0);
  a.mov(R1, R0);
  a.lea(R2, "tar_data");
  a.movi(R3, 61440);
  a.call("sys_read");
  a.store(SP, 12, R0);  // total
  a.load(R1, SP, 8);
  a.call("sys_close");
  a.movi(R11, 0);
  a.store(SP, 16, R11);  // pos
  a.label(".x_loop");
  a.load(R11, SP, 16);
  a.load(R12, SP, 12);
  a.cmp(R11, R12);
  a.jge(".x_done");
  a.lea(R13, "tar_data");
  a.add(R13, R11);
  a.load(R14, R13, 0);  // nlen
  a.store(SP, 24, R14);
  a.load(R14, R13, 4);  // dlen
  a.store(SP, 28, R14);
  // copy the name into tar_path after "<dir>/"
  a.lea(R1, "tar_path");
  load_arg(a, 2, R2);
  a.call("strcpy");
  a.lea(R1, "tar_path");
  a.lea(R2, "tar_slash");
  a.call("strcat");
  a.lea(R1, "tar_path");
  a.call("strlen");
  a.lea(R1, "tar_path");
  a.add(R1, R0);
  a.lea(R2, "tar_data");
  a.load(R11, SP, 16);
  a.add(R2, R11);
  a.addi(R2, 8);
  a.load(R3, SP, 24);
  a.push(R1);
  a.push(R3);
  a.call("memcpy");
  a.pop(R3);
  a.pop(R1);
  a.add(R1, R3);
  a.movi(R11, 0);
  a.storeb(R1, 0, R11);
  // create the file and write the data
  a.lea(R1, "tar_path");
  a.movi(R2, O_WRONLY | O_CREAT | O_TRUNC);
  a.movi(R3, 0644);
  a.call("open_or_die");
  a.store(SP, 20, R0);
  a.mov(R1, R0);
  a.lea(R2, "tar_data");
  a.load(R11, SP, 16);
  a.add(R2, R11);
  a.addi(R2, 8);
  a.load(R12, SP, 24);
  a.add(R2, R12);
  a.load(R3, SP, 28);
  a.call("sys_write");
  a.load(R1, SP, 20);
  a.call("sys_close");
  a.lea(R1, "tar_path");
  a.movi(R2, 0644);
  a.call("sys_chmod");
  // pos += 8 + nlen + dlen
  a.load(R11, SP, 16);
  a.addi(R11, 8);
  a.load(R12, SP, 24);
  a.add(R11, R12);
  a.load(R12, SP, 28);
  a.add(R11, R12);
  a.store(SP, 16, R11);
  a.jmp(".x_loop");
  a.label(".x_done");
  frame_out(a, 8);
  a.movi(R0, 0);
  a.ret();

  a.rodata_cstr("tar_cflag", "c");
  a.rodata_cstr("tar_slash", "/");
  a.rodata_cstr("tar_done_msg", "archived\n");
  a.bss("tar_names", 4096);
  a.bss("tar_path", 512);
  a.bss("tar_data", 61444);
  a.bss("tar_hdr", 16);
  emit_libc(a, p);
  return a.link();
}

}  // namespace asc::apps
