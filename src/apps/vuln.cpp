// The attack target of §4.1.
//
// vuln_echo mirrors the paper's vulnerable program: it "reads in a file name
// and invokes the /bin/ls program on the input. The file name is read into a
// stack allocated buffer, which can be overflowed by an attacker to gain
// control of the program."
//
// Layout inside main():
//   [ret addr][ 64-byte buf ]   <- sp after the frame is set up
// read(0, buf, 4096) happily writes past the 64 bytes, clobbering the return
// address; the attack harness (tests/bench) crafts stdin payloads that
// redirect control into injected code on the stack.
//
// Before the vulnerable read, main loads an optional config file -- giving
// the program an authenticated open/read/close cluster whose control-flow
// policy does NOT allow being reached after the stdin read. Mimicry attacks
// that jump there are caught by the predecessor check.
#include "apps/apps.h"
#include "apps/libtoy.h"
#include "tasm/assembler.h"

namespace asc::apps {

binary::Image build_vuln_echo(os::Personality p) {
  tasm::Assembler a("vuln_echo");

  // load_config: open/read/close of /etc/vuln.conf if present.
  a.func("load_config");
  a.lea(R1, "ve_conf");
  a.movi(R2, 0);
  a.call("sys_access");
  a.cmpi(R0, 0);
  a.jlt(".skip");
  a.lea(R1, "ve_conf");
  a.movi(R2, O_RDONLY);
  a.movi(R3, 0);
  a.call("sys_open");
  a.cmpi(R0, 0);
  a.jlt(".skip");
  a.push(R0);
  a.mov(R1, R0);
  a.lea(R2, "ve_confbuf");
  a.movi(R3, 128);
  a.call("sys_read");
  a.pop(R1);
  a.call("sys_close");
  a.label(".skip");
  a.ret();

  a.func("main");
  a.call("load_config");
  a.subi(SP, 64);  // buf[64] -- the vulnerable stack buffer
  // read(0, buf, 4096): unchecked length, classic overflow.
  a.movi(R1, 0);
  a.mov(R2, SP);
  a.movi(R3, 4096);
  a.call("sys_read");
  // NUL-terminate at the returned length (or end of buffer... the bug: no
  // clamping). Strip a trailing newline if present.
  a.cmpi(R0, 0);
  a.jle(".no_input");
  a.mov(R11, SP);
  a.add(R11, R0);
  a.movi(R12, 0);
  a.storeb(R11, 0, R12);
  a.subi(R11, 1);
  a.loadb(R12, R11, 0);
  a.cmpi(R12, '\n');
  a.jnz(".no_input");
  a.movi(R12, 0);
  a.storeb(R11, 0, R12);
  a.label(".no_input");
  // spawn("/bin/ls", buf): the path is a string CONSTANT, so the installer
  // protects it with an authenticated string.
  a.lea(R1, "ve_ls");
  a.mov(R2, SP);
  a.call("sys_spawn");
  a.lea(R1, "ve_done");
  a.call("print");
  a.addi(SP, 64);
  a.movi(R0, 0);
  a.ret();

  a.rodata_cstr("ve_conf", "/etc/vuln.conf");
  a.rodata_cstr("ve_ls", "/bin/ls");
  a.rodata_cstr("ve_done", "listed\n");
  a.bss("ve_confbuf", 128);
  emit_libc(a, p);
  return a.link();
}

std::vector<std::pair<std::string, binary::Image>> build_all(os::Personality p) {
  std::vector<std::pair<std::string, binary::Image>> out;
  out.emplace_back("bison", build_bison(p));
  out.emplace_back("calc", build_calc(p));
  out.emplace_back("screen", build_screen(p));
  out.emplace_back("gzip-spec", build_gzip_spec(p));
  out.emplace_back("crafty", build_crafty(p));
  out.emplace_back("mcf", build_mcf(p));
  out.emplace_back("vpr", build_vpr(p));
  out.emplace_back("twolf", build_twolf(p));
  out.emplace_back("gcc", build_gcc(p));
  out.emplace_back("vortex", build_vortex(p));
  out.emplace_back("pyramid", build_pyramid(p));
  out.emplace_back("gzip", build_gzip(p));
  out.emplace_back("tar", build_tar(p));
  out.emplace_back("cat", build_tool_cat(p));
  out.emplace_back("cp", build_tool_cp(p));
  out.emplace_back("rm", build_tool_rm(p));
  out.emplace_back("mv", build_tool_mv(p));
  out.emplace_back("chmod", build_tool_chmod(p));
  out.emplace_back("mkdir", build_tool_mkdir(p));
  out.emplace_back("sort", build_tool_sort(p));
  out.emplace_back("vuln_echo", build_vuln_echo(p));
  return out;
}

}  // namespace asc::apps
