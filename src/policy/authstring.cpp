#include "policy/authstring.h"

#include "util/error.h"
#include "util/hex.h"

namespace asc::policy {

std::vector<std::uint8_t> build_authenticated_string(const crypto::MacKey& key,
                                                     std::span<const std::uint8_t> content) {
  if (content.size() > kAsMaxLength) throw Error("authenticated string too long");
  std::vector<std::uint8_t> blob;
  blob.reserve(kAsHeaderSize + content.size());
  util::put_u32(blob, static_cast<std::uint32_t>(content.size()));
  const crypto::Mac mac = key.mac(content);
  blob.insert(blob.end(), mac.begin(), mac.end());
  blob.insert(blob.end(), content.begin(), content.end());
  return blob;
}

}  // namespace asc::policy
