// Capability-tracking policies (§5.3) and the authenticated dictionary that
// backs them.
//
// A capability policy requires an fd argument to be a value previously
// returned by one of an allowed set of open/socket call sites. The kernel
// records, per process, which call site produced each live fd; the policy's
// allowed-source set travels inside the predecessor-set blob (see
// policy/policy.h) so no extra trap argument is needed.
//
// The paper's preferred implementation keeps the set of active descriptors in
// APPLICATION memory, verified with an authenticated dictionary, so the
// kernel only holds a counter nonce. AuthenticatedFdSet below implements that
// scheme over an arbitrary byte buffer (which may be guest memory): layout
//   u32 count | u32 slots[capacity] | 16B MAC(count ‖ slots ‖ nonce)
// Every mutation verifies the current MAC, applies the update, increments the
// trusted nonce, and re-MACs -- the online-memory-checker discipline used for
// lastBlock/lbMAC (§3.2), generalized to a set.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/cmac.h"

namespace asc::policy {

class AuthenticatedFdSet {
 public:
  /// Bytes required for a set with `capacity` slots.
  static std::size_t blob_size(std::size_t capacity);

  /// Initialize an empty set in `blob` under `key` with nonce `counter`.
  static void init(std::span<std::uint8_t> blob, std::size_t capacity,
                   const crypto::MacKey& key, std::uint64_t counter);

  /// Verify integrity of the blob against the trusted nonce.
  static bool verify(std::span<const std::uint8_t> blob, std::size_t capacity,
                     const crypto::MacKey& key, std::uint64_t counter);

  /// Verified membership test. Returns nullopt if the blob fails
  /// verification (tampering), else whether fd is present.
  static std::optional<bool> contains(std::span<const std::uint8_t> blob, std::size_t capacity,
                                      const crypto::MacKey& key, std::uint64_t counter,
                                      std::uint32_t fd);

  /// Verified insert/remove. On success the nonce is incremented and the
  /// MAC rewritten; returns false on verification failure, a full set
  /// (insert) or a missing element (remove).
  static bool insert(std::span<std::uint8_t> blob, std::size_t capacity,
                     const crypto::MacKey& key, std::uint64_t& counter, std::uint32_t fd);
  static bool remove(std::span<std::uint8_t> blob, std::size_t capacity,
                     const crypto::MacKey& key, std::uint64_t& counter, std::uint32_t fd);

 private:
  static crypto::Mac mac_of(std::span<const std::uint8_t> blob, std::size_t capacity,
                            const crypto::MacKey& key, std::uint64_t counter);
};

/// Sentinel fd slot value meaning "empty".
inline constexpr std::uint32_t kEmptyFdSlot = 0xffffffffu;

}  // namespace asc::policy
