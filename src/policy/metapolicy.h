// Metapolicies and policy templates (§5.2).
//
// A metapolicy states what MUST be protected for each system call -- as
// opposed to what CAN be protected automatically by static analysis. When the
// installer's analysis cannot derive a value the metapolicy requires, it
// emits a policy TEMPLATE with a hole; the security administrator fills the
// hole with a concrete value or a pattern (from application knowledge or
// dynamic profiling), producing the complete policy used for rewriting.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "os/syscalls.h"
#include "policy/policy.h"

namespace asc::policy {

/// Requirement on one argument of one system call.
enum class ArgRequirement : std::uint8_t {
  None,            // whatever static analysis finds is acceptable
  MustConstrain,   // a constant or string value MUST be in the policy
  MustPattern,     // the argument MUST match an administrator-given pattern
};

struct SyscallMeta {
  bool require_site = true;          // call site must be in the policy
  bool require_control_flow = true;  // predecessor set must be in the policy
  std::array<ArgRequirement, os::kMaxSyscallArgs> args{};
};

/// Metapolicy: per-syscall strictness requirements, typically derived from
/// the threat level of each call (e.g. spawn/open stricter than getpid).
class Metapolicy {
 public:
  /// Default metapolicy: everything automatic, nothing mandatory.
  Metapolicy() = default;

  /// A strict profile: path arguments of open/spawn/unlink/rename/chmod must
  /// be constrained (by value or pattern).
  static Metapolicy strict_paths();

  void set(os::SysId id, SyscallMeta meta) { per_call_[id] = meta; }
  const SyscallMeta& for_call(os::SysId id) const;

 private:
  std::map<os::SysId, SyscallMeta> per_call_;
  SyscallMeta default_{};
};

/// A hole in a policy template: the analysis could not satisfy the
/// metapolicy for this argument; the administrator must supply a value.
struct TemplateHole {
  std::size_t policy_index = 0;  // index into PolicyTemplate::policies
  os::SysId sys = os::SysId::Exit;
  std::uint32_t call_site = 0;
  int arg = 0;
  ArgRequirement requirement = ArgRequirement::None;
};

struct PolicyTemplate {
  std::vector<SyscallPolicy> policies;
  std::vector<TemplateHole> holes;

  bool complete() const { return holes.empty(); }

  /// Fill one hole with a constant string value or a pattern. Throws if the
  /// hole index is invalid or the fill does not satisfy the requirement.
  void fill_with_string(std::size_t hole_index, const std::string& value);
  void fill_with_pattern(std::size_t hole_index, const std::string& pattern);
  void fill_with_const(std::size_t hole_index, std::uint32_t value);
};

/// Compute the holes in `policies` under `meta`.
std::vector<TemplateHole> find_holes(const std::vector<SyscallPolicy>& policies,
                                     const Metapolicy& meta);

}  // namespace asc::policy
