#include "policy/metapolicy.h"

#include "util/error.h"

namespace asc::policy {

Metapolicy Metapolicy::strict_paths() {
  Metapolicy m;
  for (os::SysId id : {os::SysId::Open, os::SysId::Spawn, os::SysId::Unlink, os::SysId::Rename,
                       os::SysId::Chmod, os::SysId::Symlink}) {
    SyscallMeta sm;
    const auto& sig = os::signature(id);
    for (int i = 0; i < sig.arity; ++i) {
      if (sig.args[static_cast<std::size_t>(i)] == os::ArgKind::PathIn) {
        sm.args[static_cast<std::size_t>(i)] = ArgRequirement::MustConstrain;
      }
    }
    m.set(id, sm);
  }
  return m;
}

const SyscallMeta& Metapolicy::for_call(os::SysId id) const {
  auto it = per_call_.find(id);
  return it == per_call_.end() ? default_ : it->second;
}

std::vector<TemplateHole> find_holes(const std::vector<SyscallPolicy>& policies,
                                     const Metapolicy& meta) {
  std::vector<TemplateHole> holes;
  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    const SyscallPolicy& p = policies[pi];
    const SyscallMeta& m = meta.for_call(p.sys);
    for (int i = 0; i < p.arity; ++i) {
      const auto req = m.args[static_cast<std::size_t>(i)];
      if (req == ArgRequirement::None) continue;
      const auto kind = p.args[static_cast<std::size_t>(i)].kind;
      const bool satisfied =
          req == ArgRequirement::MustConstrain
              ? (kind == ArgPolicy::Kind::Const || kind == ArgPolicy::Kind::String ||
                 kind == ArgPolicy::Kind::Pattern)
              : kind == ArgPolicy::Kind::Pattern;
      if (!satisfied) {
        holes.push_back(TemplateHole{pi, p.sys, p.call_site, i, req});
      }
    }
  }
  return holes;
}

namespace {
// Validate first, then erase: a rejected fill must leave the hole in place.
const TemplateHole& peek_hole(const PolicyTemplate& t, std::size_t hole_index) {
  if (hole_index >= t.holes.size()) throw Error("PolicyTemplate: bad hole index");
  return t.holes[hole_index];
}
void drop_hole(PolicyTemplate& t, std::size_t hole_index) {
  t.holes.erase(t.holes.begin() + static_cast<std::ptrdiff_t>(hole_index));
}
}  // namespace

void PolicyTemplate::fill_with_string(std::size_t hole_index, const std::string& value) {
  const TemplateHole h = peek_hole(*this, hole_index);
  if (h.requirement == ArgRequirement::MustPattern) {
    throw Error("PolicyTemplate: hole requires a pattern, not a string constant");
  }
  auto& arg = policies[h.policy_index].args[static_cast<std::size_t>(h.arg)];
  arg.kind = ArgPolicy::Kind::String;
  arg.str = value;
  drop_hole(*this, hole_index);
}

void PolicyTemplate::fill_with_pattern(std::size_t hole_index, const std::string& pattern) {
  const TemplateHole h = peek_hole(*this, hole_index);
  auto& arg = policies[h.policy_index].args[static_cast<std::size_t>(h.arg)];
  arg.kind = ArgPolicy::Kind::Pattern;
  arg.str = pattern;
  drop_hole(*this, hole_index);
}

void PolicyTemplate::fill_with_const(std::size_t hole_index, std::uint32_t value) {
  const TemplateHole h = peek_hole(*this, hole_index);
  if (h.requirement == ArgRequirement::MustPattern) {
    throw Error("PolicyTemplate: hole requires a pattern, not a constant");
  }
  auto& arg = policies[h.policy_index].args[static_cast<std::size_t>(h.arg)];
  arg.kind = ArgPolicy::Kind::Const;
  arg.value = value;
  drop_hole(*this, hole_index);
}

}  // namespace asc::policy
