// The authenticated string (AS) abstraction (§3.2).
//
// Memory layout: {u32 length}{16-byte MAC}{bytes...}. A system call argument
// that is an AS points at `bytes`; the kernel reads the 20-byte header at
// pointer-20 and verifies MAC(key, bytes[0..length)) before trusting the
// content. Predecessor sets and argument patterns are stored the same way.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/cmac.h"

namespace asc::policy {

inline constexpr std::uint32_t kAsHeaderSize = 20;
/// Upper bound the kernel enforces on AS length to prevent an attacker from
/// pointing the checker at a huge or unmapped range (the denial-of-service
/// concern of §3.2).
inline constexpr std::uint32_t kAsMaxLength = 1u << 16;

/// Build the full in-memory blob {len, MAC, content} for `content`.
std::vector<std::uint8_t> build_authenticated_string(const crypto::MacKey& key,
                                                     std::span<const std::uint8_t> content);

/// Offset of the content within the blob (== kAsHeaderSize).
inline std::uint32_t as_body_offset() { return kAsHeaderSize; }

}  // namespace asc::policy
