// The 32-bit policy descriptor (§3.2).
//
// The descriptor travels as the first extra argument of every authenticated
// system call and tells the kernel which properties of the call its policy
// constrains, so the kernel can reconstruct the encoded call byte string.
// Layout:
//
//   bit 0        call site constrained
//   bit 1        control-flow (predecessor set) constrained
//   bits 2..7    reserved
//   bit 8+i      argument i's value is constrained (i in 0..4)
//   bit 16+i     argument i is an authenticated string (implies bit 8+i)
//   bit 24+i     argument i must match a pattern (§5.1 extension;
//                implies NOT bit 8+i -- patterns replace exact values)
//   bits 29..31  reserved
#pragma once

#include <cstdint>
#include <string>

#include "util/error.h"

namespace asc::policy {

class Descriptor {
 public:
  Descriptor() = default;
  explicit Descriptor(std::uint32_t bits) : bits_(bits) {}

  std::uint32_t bits() const { return bits_; }

  bool site_constrained() const { return (bits_ & 1u) != 0; }
  bool control_flow_constrained() const { return (bits_ & 2u) != 0; }
  bool arg_constrained(int i) const { return (bits_ & (1u << (8 + check(i)))) != 0; }
  bool arg_is_authenticated_string(int i) const { return (bits_ & (1u << (16 + check(i)))) != 0; }
  bool arg_has_pattern(int i) const { return (bits_ & (1u << (24 + check(i)))) != 0; }

  void set_site() { bits_ |= 1u; }
  void set_control_flow() { bits_ |= 2u; }
  void set_arg_constrained(int i) { bits_ |= 1u << (8 + check(i)); }
  void set_arg_authenticated_string(int i) {
    bits_ |= 1u << (8 + check(i));
    bits_ |= 1u << (16 + check(i));
  }
  void set_arg_pattern(int i) { bits_ |= 1u << (24 + check(i)); }

  bool operator==(const Descriptor&) const = default;

  std::string to_string() const;

 private:
  static int check(int i) {
    if (i < 0 || i > 4) throw Error("Descriptor: argument index out of range");
    return i;
  }
  std::uint32_t bits_ = 0;
};

}  // namespace asc::policy
