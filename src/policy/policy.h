// System call policies and the encoded-policy byte string (§3.3).
//
// A SyscallPolicy is the logical, human-readable policy the installer derives
// for one call site ("Permit open from location 0x806c462, parameter 0 equals
// /dev/console, ..."). The encoded policy is its self-contained byte-string
// representation; the call MAC is an AES-CMAC over it. The kernel-side
// checker reconstructs the *encoded call* -- the same byte layout, but filled
// from the actual trap arguments -- so a MAC match proves the call complies
// with the policy (§3.4).
//
// Both sides MUST agree on the layout, so the single serializer below is the
// only place it is defined:
//
//   u16 sysno
//   u32 policy descriptor
//   u32 call site                      (if descriptor bit SITE)
//   u32 block id                       (always)
//   for each argument i < arity, ascending:
//     if AS bit:             u32 addr, u32 len, 16B content MAC
//     else if const bit:     u32 value
//     (pattern args contribute nothing here; see below)
//   if CONTROL_FLOW bit:     u32 predSetAddr, u32 predSetLen, 16B predSetMAC,
//                            u32 lbPtr
//
// The predecessor-set blob (an authenticated string in .asdata) contains:
//   u32 npred, npred x u32 predecessor block ids,
//   u32 ncap,  ncap  x u32 allowed fd-origin block ids (capability, §5.3),
//   u32 npat,  npat  x {u32 arg index, u32 pattern AS body address} (§5.1)
// Pattern references ride inside this MAC-protected blob, so no extra trap
// register is needed to bind a pattern to its call; the runtime match hint
// (untrusted by design) is passed in r11.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/cmac.h"
#include "os/syscalls.h"
#include "policy/descriptor.h"

namespace asc::policy {

/// Local block id 0 is reserved for the "program start" pseudo-block: it is
/// the value of lastBlock before the first system call executes.
inline constexpr std::uint32_t kStartBlockLocal = 0;

/// Compose a machine-wide-unique block id (§5.5 Frankenstein defence). With
/// `unique_ids` off, the local id is used alone -- which the Frankenstein
/// attack test exploits.
std::uint32_t make_block_id(std::uint16_t program_id, std::uint32_t local_id, bool unique_ids);

/// Per-argument logical policy.
struct ArgPolicy {
  enum class Kind : std::uint8_t {
    Unconstrained,  // analysis result: Unknown
    Const,          // fixed numeric value
    String,         // fixed string constant -> authenticated string
    Pattern,        // must match a glob pattern (§5.1 extension)
    MultiValue,     // small set of possible constants (§5 extension; counted
                    // in Table 3's `mv` column, enforced when enabled)
  };
  Kind kind = Kind::Unconstrained;
  std::uint32_t value = 0;               // Const
  std::string str;                       // String content or Pattern text
  std::vector<std::uint32_t> values;     // MultiValue
};

/// The logical policy for one system call site.
struct SyscallPolicy {
  os::SysId sys = os::SysId::Exit;
  std::uint16_t sysno = 0;
  std::uint32_t call_site = 0;  // address of the SYSCALL instruction
  std::uint32_t block_id = 0;   // composed block id of the containing block
  int arity = 0;
  std::array<ArgPolicy, os::kMaxSyscallArgs> args{};
  bool control_flow = true;
  std::vector<std::uint32_t> predecessors;  // composed block ids (may include start)
  std::vector<std::uint32_t> fd_sources;    // capability policy for the fd arg; empty = off

  /// Build the policy descriptor implied by the argument kinds.
  Descriptor descriptor() const;

  /// Paper-style pretty form.
  std::string to_string() const;
};

/// An {address, length, MAC} tuple describing an authenticated string as it
/// appears in the encoded policy / encoded call.
struct AsRef {
  std::uint32_t addr = 0;
  std::uint32_t len = 0;
  crypto::Mac mac{};
};

/// Everything that goes into the encoded byte string. The installer fills it
/// from the policy + final layout; the kernel fills it from the trap.
struct EncodedPolicyInputs {
  std::uint16_t sysno = 0;
  Descriptor descriptor;
  std::uint32_t call_site = 0;
  std::uint32_t block_id = 0;
  int arity = 0;
  std::array<std::uint32_t, os::kMaxSyscallArgs> const_values{};
  std::array<AsRef, os::kMaxSyscallArgs> as_args{};  // AS or pattern args
  AsRef pred_set;
  std::uint32_t lb_ptr = 0;
};

/// Serialize the encoded policy / encoded call.
std::vector<std::uint8_t> encode_policy(const EncodedPolicyInputs& in);

/// Byte offsets, within encode_policy's output for `in`, of every embedded
/// authenticated-string MAC: one per AS/pattern argument in ascending
/// argument order, then the predecessor-set MAC if control flow is
/// constrained. Only descriptor bits and arity are consulted. The rekeyer
/// uses these to splice key-dependent MAC fields into otherwise
/// key-independent call-MAC messages; the layout mirrors encode_policy,
/// which remains the single serializer.
std::vector<std::size_t> embedded_mac_offsets(const EncodedPolicyInputs& in);

/// A pattern reference inside the predecessor-set blob.
struct PatternRef {
  std::uint32_t arg_index = 0;
  std::uint32_t pattern_addr = 0;  // AS body address of the pattern text

  bool operator==(const PatternRef&) const = default;
};

/// Serialize the predecessor-set blob content (before AS wrapping).
std::vector<std::uint8_t> encode_pred_set(const std::vector<std::uint32_t>& predecessors,
                                          const std::vector<std::uint32_t>& fd_sources,
                                          const std::vector<PatternRef>& patterns = {});

/// Parse a predecessor-set blob; returns false on malformed content.
bool decode_pred_set(std::span<const std::uint8_t> blob, std::vector<std::uint32_t>& predecessors,
                     std::vector<std::uint32_t>& fd_sources, std::vector<PatternRef>& patterns);

/// The policy-state record the kernel MACs: lastBlock then the per-process
/// counter nonce (§3.2's online memory checker).
std::vector<std::uint8_t> encode_policy_state(std::uint32_t last_block, std::uint64_t counter);

/// Size of the in-application policy state record: u32 lastBlock + 16B MAC.
inline constexpr std::uint32_t kPolicyStateSize = 20;

}  // namespace asc::policy
