#include "policy/policy.h"

#include <cstdio>

#include "util/hex.h"

namespace asc::policy {

std::uint32_t make_block_id(std::uint16_t program_id, std::uint32_t local_id, bool unique_ids) {
  if (!unique_ids) return local_id;
  return static_cast<std::uint32_t>(program_id) << 16 | (local_id & 0xffffu);
}

Descriptor SyscallPolicy::descriptor() const {
  Descriptor d;
  d.set_site();
  if (control_flow) d.set_control_flow();
  for (int i = 0; i < arity; ++i) {
    switch (args[static_cast<std::size_t>(i)].kind) {
      case ArgPolicy::Kind::Const:
      case ArgPolicy::Kind::MultiValue:
        // MultiValue is enforced as Const only when the policy was narrowed
        // to a single value; as a set it is advisory (Table 3 statistics)
        // unless the pattern mechanism encodes it. Here only single-valued
        // constants contribute to the descriptor.
        if (args[static_cast<std::size_t>(i)].kind == ArgPolicy::Kind::Const) {
          d.set_arg_constrained(i);
        }
        break;
      case ArgPolicy::Kind::String:
        d.set_arg_authenticated_string(i);
        break;
      case ArgPolicy::Kind::Pattern:
        d.set_arg_pattern(i);
        break;
      case ArgPolicy::Kind::Unconstrained:
        break;
    }
  }
  return d;
}

std::string SyscallPolicy::to_string() const {
  char buf[128];
  const auto& sig = os::signature(sys);
  std::snprintf(buf, sizeof buf, "Permit %s from location 0x%x in basic block %u\n", sig.name,
                call_site, block_id);
  std::string out = buf;
  for (int i = 0; i < arity; ++i) {
    const auto& a = args[static_cast<std::size_t>(i)];
    out += "  Parameter " + std::to_string(i) + " ";
    switch (a.kind) {
      case ArgPolicy::Kind::Unconstrained:
        out += "equals ANY\n";
        break;
      case ArgPolicy::Kind::Const: {
        std::snprintf(buf, sizeof buf, "equals %u\n", a.value);
        out += buf;
        break;
      }
      case ArgPolicy::Kind::String:
        out += "equals \"" + a.str + "\"\n";
        break;
      case ArgPolicy::Kind::Pattern:
        out += "matches \"" + a.str + "\"\n";
        break;
      case ArgPolicy::Kind::MultiValue: {
        out += "in {";
        for (std::size_t j = 0; j < a.values.size(); ++j) {
          if (j != 0) out += ", ";
          out += std::to_string(a.values[j]);
        }
        out += "}\n";
        break;
      }
    }
  }
  if (control_flow) {
    out += "  Possible predecessors";
    for (auto p : predecessors) out += " " + std::to_string(p);
    out += "\n";
  }
  if (!fd_sources.empty()) {
    out += "  Fd argument from open sites";
    for (auto p : fd_sources) out += " " + std::to_string(p);
    out += "\n";
  }
  return out;
}

std::vector<std::uint8_t> encode_policy(const EncodedPolicyInputs& in) {
  std::vector<std::uint8_t> out;
  util::put_u16(out, in.sysno);
  util::put_u32(out, in.descriptor.bits());
  if (in.descriptor.site_constrained()) util::put_u32(out, in.call_site);
  util::put_u32(out, in.block_id);
  for (int i = 0; i < in.arity; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (in.descriptor.arg_is_authenticated_string(i)) {
      util::put_u32(out, in.as_args[idx].addr);
      util::put_u32(out, in.as_args[idx].len);
      out.insert(out.end(), in.as_args[idx].mac.begin(), in.as_args[idx].mac.end());
    } else if (in.descriptor.arg_constrained(i)) {
      util::put_u32(out, in.const_values[idx]);
    }
  }
  if (in.descriptor.control_flow_constrained()) {
    util::put_u32(out, in.pred_set.addr);
    util::put_u32(out, in.pred_set.len);
    out.insert(out.end(), in.pred_set.mac.begin(), in.pred_set.mac.end());
    util::put_u32(out, in.lb_ptr);
  }
  return out;
}

std::vector<std::size_t> embedded_mac_offsets(const EncodedPolicyInputs& in) {
  std::vector<std::size_t> offs;
  std::size_t off = 2 + 4;  // sysno + descriptor
  if (in.descriptor.site_constrained()) off += 4;
  off += 4;  // block id
  for (int i = 0; i < in.arity; ++i) {
    if (in.descriptor.arg_is_authenticated_string(i)) {
      offs.push_back(off + 8);  // addr + len precede the content MAC
      off += 24;
    } else if (in.descriptor.arg_constrained(i)) {
      off += 4;
    }
  }
  if (in.descriptor.control_flow_constrained()) offs.push_back(off + 8);
  return offs;
}

std::vector<std::uint8_t> encode_pred_set(const std::vector<std::uint32_t>& predecessors,
                                          const std::vector<std::uint32_t>& fd_sources,
                                          const std::vector<PatternRef>& patterns) {
  std::vector<std::uint8_t> out;
  util::put_u32(out, static_cast<std::uint32_t>(predecessors.size()));
  for (auto p : predecessors) util::put_u32(out, p);
  util::put_u32(out, static_cast<std::uint32_t>(fd_sources.size()));
  for (auto c : fd_sources) util::put_u32(out, c);
  util::put_u32(out, static_cast<std::uint32_t>(patterns.size()));
  for (const auto& pr : patterns) {
    util::put_u32(out, pr.arg_index);
    util::put_u32(out, pr.pattern_addr);
  }
  return out;
}

bool decode_pred_set(std::span<const std::uint8_t> blob, std::vector<std::uint32_t>& predecessors,
                     std::vector<std::uint32_t>& fd_sources, std::vector<PatternRef>& patterns) {
  predecessors.clear();
  fd_sources.clear();
  patterns.clear();
  if (blob.size() < 12) return false;
  std::size_t off = 0;
  const std::uint32_t npred = util::get_u32(blob, off);
  off += 4;
  if (npred > blob.size() || blob.size() < off + 4ull * npred + 8) return false;
  for (std::uint32_t i = 0; i < npred; ++i) {
    predecessors.push_back(util::get_u32(blob, off));
    off += 4;
  }
  const std::uint32_t ncap = util::get_u32(blob, off);
  off += 4;
  if (ncap > blob.size() || blob.size() < off + 4ull * ncap + 4) return false;
  for (std::uint32_t i = 0; i < ncap; ++i) {
    fd_sources.push_back(util::get_u32(blob, off));
    off += 4;
  }
  const std::uint32_t npat = util::get_u32(blob, off);
  off += 4;
  if (npat > blob.size() || blob.size() < off + 8ull * npat) return false;
  for (std::uint32_t i = 0; i < npat; ++i) {
    PatternRef pr;
    pr.arg_index = util::get_u32(blob, off);
    pr.pattern_addr = util::get_u32(blob, off + 4);
    off += 8;
    patterns.push_back(pr);
  }
  return off == blob.size();
}

std::vector<std::uint8_t> encode_policy_state(std::uint32_t last_block, std::uint64_t counter) {
  std::vector<std::uint8_t> out;
  util::put_u32(out, last_block);
  util::put_u64(out, counter);
  return out;
}

}  // namespace asc::policy
