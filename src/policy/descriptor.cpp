#include "policy/descriptor.h"

namespace asc::policy {

std::string Descriptor::to_string() const {
  std::string out;
  if (site_constrained()) out += "site ";
  if (control_flow_constrained()) out += "cflow ";
  for (int i = 0; i < 5; ++i) {
    if (arg_is_authenticated_string(i)) {
      out += "arg" + std::to_string(i) + "=AS ";
    } else if (arg_constrained(i)) {
      out += "arg" + std::to_string(i) + "=const ";
    } else if (arg_has_pattern(i)) {
      out += "arg" + std::to_string(i) + "=pattern ";
    }
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace asc::policy
