#include "policy/capability.h"

#include <vector>

#include "util/error.h"
#include "util/hex.h"

namespace asc::policy {

std::size_t AuthenticatedFdSet::blob_size(std::size_t capacity) {
  return 4 + 4 * capacity + 16;
}

crypto::Mac AuthenticatedFdSet::mac_of(std::span<const std::uint8_t> blob, std::size_t capacity,
                                       const crypto::MacKey& key, std::uint64_t counter) {
  std::vector<std::uint8_t> msg(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(4 + 4 * capacity));
  util::put_u64(msg, counter);
  return key.mac(msg);
}

void AuthenticatedFdSet::init(std::span<std::uint8_t> blob, std::size_t capacity,
                              const crypto::MacKey& key, std::uint64_t counter) {
  if (blob.size() < blob_size(capacity)) throw Error("AuthenticatedFdSet: blob too small");
  util::set_u32(blob, 0, 0);
  for (std::size_t i = 0; i < capacity; ++i) util::set_u32(blob, 4 + 4 * i, kEmptyFdSlot);
  const crypto::Mac m = mac_of(blob, capacity, key, counter);
  std::copy(m.begin(), m.end(), blob.begin() + static_cast<std::ptrdiff_t>(4 + 4 * capacity));
}

bool AuthenticatedFdSet::verify(std::span<const std::uint8_t> blob, std::size_t capacity,
                                const crypto::MacKey& key, std::uint64_t counter) {
  if (blob.size() < blob_size(capacity)) return false;
  const crypto::Mac expect = mac_of(blob, capacity, key, counter);
  crypto::Mac stored{};
  std::copy(blob.begin() + static_cast<std::ptrdiff_t>(4 + 4 * capacity),
            blob.begin() + static_cast<std::ptrdiff_t>(4 + 4 * capacity + 16), stored.begin());
  return crypto::Cmac::equal(expect, stored);
}

std::optional<bool> AuthenticatedFdSet::contains(std::span<const std::uint8_t> blob,
                                                 std::size_t capacity, const crypto::MacKey& key,
                                                 std::uint64_t counter, std::uint32_t fd) {
  if (!verify(blob, capacity, key, counter)) return std::nullopt;
  for (std::size_t i = 0; i < capacity; ++i) {
    if (util::get_u32(blob, 4 + 4 * i) == fd) return true;
  }
  return false;
}

bool AuthenticatedFdSet::insert(std::span<std::uint8_t> blob, std::size_t capacity,
                                const crypto::MacKey& key, std::uint64_t& counter,
                                std::uint32_t fd) {
  if (fd == kEmptyFdSlot) return false;
  if (!verify(blob, capacity, key, counter)) return false;
  for (std::size_t i = 0; i < capacity; ++i) {
    if (util::get_u32(blob, 4 + 4 * i) == fd) return true;  // already present
  }
  for (std::size_t i = 0; i < capacity; ++i) {
    if (util::get_u32(blob, 4 + 4 * i) == kEmptyFdSlot) {
      util::set_u32(blob, 4 + 4 * i, fd);
      util::set_u32(blob, 0, util::get_u32(blob, 0) + 1);
      ++counter;
      const crypto::Mac m = mac_of(blob, capacity, key, counter);
      std::copy(m.begin(), m.end(),
                blob.begin() + static_cast<std::ptrdiff_t>(4 + 4 * capacity));
      return true;
    }
  }
  return false;  // full
}

bool AuthenticatedFdSet::remove(std::span<std::uint8_t> blob, std::size_t capacity,
                                const crypto::MacKey& key, std::uint64_t& counter,
                                std::uint32_t fd) {
  if (!verify(blob, capacity, key, counter)) return false;
  for (std::size_t i = 0; i < capacity; ++i) {
    if (util::get_u32(blob, 4 + 4 * i) == fd) {
      util::set_u32(blob, 4 + 4 * i, kEmptyFdSlot);
      util::set_u32(blob, 0, util::get_u32(blob, 0) - 1);
      ++counter;
      const crypto::Mac m = mac_of(blob, capacity, key, counter);
      std::copy(m.begin(), m.end(),
                blob.begin() + static_cast<std::ptrdiff_t>(4 + 4 * capacity));
      return true;
    }
  }
  return false;
}

}  // namespace asc::policy
