#include "policy/pattern.h"

#include "util/error.h"

namespace asc::policy {

namespace {

// Parsed pattern element.
struct Elem {
  enum class Kind : std::uint8_t { Lit, Any, Star, Alt } kind = Kind::Lit;
  char lit = 0;
  std::vector<std::string> alts;
};

std::vector<Elem> parse(const std::string& pattern) {
  std::vector<Elem> out;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const char c = pattern[i];
    if (c == '?') {
      out.push_back(Elem{Elem::Kind::Any, 0, {}});
    } else if (c == '*') {
      out.push_back(Elem{Elem::Kind::Star, 0, {}});
    } else if (c == '{') {
      Elem e{Elem::Kind::Alt, 0, {}};
      std::string cur;
      ++i;
      bool closed = false;
      for (; i < pattern.size(); ++i) {
        if (pattern[i] == '}') {
          e.alts.push_back(cur);
          closed = true;
          break;
        }
        if (pattern[i] == ',') {
          e.alts.push_back(cur);
          cur.clear();
        } else if (pattern[i] == '{') {
          throw Error("pattern: nested '{' not supported");
        } else {
          cur.push_back(pattern[i]);
        }
      }
      if (!closed) throw Error("pattern: unclosed '{'");
      out.push_back(std::move(e));
    } else if (c == '}') {
      throw Error("pattern: stray '}'");
    } else {
      out.push_back(Elem{Elem::Kind::Lit, c, {}});
    }
  }
  return out;
}

// Backtracking matcher over parsed elements, building the hint as it goes.
bool match_rec(const std::vector<Elem>& elems, std::size_t ei, const std::string& arg,
               std::size_t ai, std::vector<std::uint32_t>& hint) {
  if (ei == elems.size()) return ai == arg.size();
  const Elem& e = elems[ei];
  switch (e.kind) {
    case Elem::Kind::Lit:
      if (ai < arg.size() && arg[ai] == e.lit) return match_rec(elems, ei + 1, arg, ai + 1, hint);
      return false;
    case Elem::Kind::Any:
      if (ai < arg.size()) return match_rec(elems, ei + 1, arg, ai + 1, hint);
      return false;
    case Elem::Kind::Star: {
      for (std::size_t take = 0; take <= arg.size() - ai; ++take) {
        hint.push_back(static_cast<std::uint32_t>(take));
        if (match_rec(elems, ei + 1, arg, ai + take, hint)) return true;
        hint.pop_back();
      }
      return false;
    }
    case Elem::Kind::Alt: {
      for (std::size_t choice = 0; choice < e.alts.size(); ++choice) {
        const std::string& alt = e.alts[choice];
        if (arg.compare(ai, alt.size(), alt) == 0) {
          hint.push_back(static_cast<std::uint32_t>(choice));
          if (match_rec(elems, ei + 1, arg, ai + alt.size(), hint)) return true;
          hint.pop_back();
        }
      }
      return false;
    }
  }
  return false;
}

}  // namespace

void validate_pattern(const std::string& pattern) { (void)parse(pattern); }

std::optional<std::vector<std::uint32_t>> match_and_prove(const std::string& pattern,
                                                          const std::string& arg) {
  const auto elems = parse(pattern);
  std::vector<std::uint32_t> hint;
  if (match_rec(elems, 0, arg, 0, hint)) return hint;
  return std::nullopt;
}

bool verify_match(const std::string& pattern, const std::string& arg,
                  const std::vector<std::uint32_t>& hint) {
  std::vector<Elem> elems;
  try {
    elems = parse(pattern);
  } catch (const Error&) {
    return false;  // a malformed pattern never verifies
  }
  std::size_t ai = 0;
  std::size_t hi = 0;
  for (const Elem& e : elems) {
    switch (e.kind) {
      case Elem::Kind::Lit:
        if (ai >= arg.size() || arg[ai] != e.lit) return false;
        ++ai;
        break;
      case Elem::Kind::Any:
        if (ai >= arg.size()) return false;
        ++ai;
        break;
      case Elem::Kind::Star: {
        if (hi >= hint.size()) return false;
        const std::uint32_t take = hint[hi++];
        if (take > arg.size() - ai) return false;
        ai += take;
        break;
      }
      case Elem::Kind::Alt: {
        if (hi >= hint.size()) return false;
        const std::uint32_t choice = hint[hi++];
        if (choice >= e.alts.size()) return false;
        const std::string& alt = e.alts[choice];
        if (arg.compare(ai, alt.size(), alt) != 0) return false;
        ai += alt.size();
        break;
      }
    }
  }
  // The whole argument must be consumed and the hint must not carry junk.
  return ai == arg.size() && hi == hint.size();
}

std::size_t verify_cost(const std::string& pattern, const std::string& arg) {
  // One comparison per literal/any/alt character plus cursor arithmetic per
  // star; bounded by |pattern| + |arg|.
  std::size_t cost = 0;
  std::vector<Elem> elems = parse(pattern);
  for (const Elem& e : elems) {
    switch (e.kind) {
      case Elem::Kind::Lit:
      case Elem::Kind::Any:
      case Elem::Kind::Star:
        cost += 1;
        break;
      case Elem::Kind::Alt: {
        std::size_t longest = 0;
        for (const auto& a : e.alts) longest = std::max(longest, a.size());
        cost += longest;
        break;
      }
    }
  }
  return cost + arg.size();
}

}  // namespace asc::policy
