// Argument patterns with proof hints (§5.1).
//
// Policies may require a string argument to match a glob-style pattern such
// as "/tmp/{foo,bar}*baz". Instead of teaching the kernel to do regular
// expression matching, the paper borrows from program checking /
// proof-carrying code: the UNTRUSTED application matches the argument itself
// and hands the kernel a hint -- one integer per choice point -- that lets
// the kernel verify the match with a single linear scan.
//
// Pattern syntax: literal characters, `?` (any one char), `*` (any sequence,
// including empty), `{a,b,c}` (alternation of literal strings; no nesting).
// Hint encoding, in pattern order: for each `{...}` the chosen alternative's
// index; for each `*` the number of characters it consumed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace asc::policy {

/// Untrusted-side matcher: finds a witness hint if `arg` matches `pattern`.
/// This is the computation the application performs before the call
/// (exponential in the worst case -- which is exactly why the kernel
/// delegates it). Returns nullopt if there is no match.
std::optional<std::vector<std::uint32_t>> match_and_prove(const std::string& pattern,
                                                          const std::string& arg);

/// Trusted-side verifier: single linear scan over pattern+arg, consuming the
/// hint. Returns true iff the hint demonstrates that `arg` matches
/// `pattern`. A wrong or truncated hint fails verification even if the
/// argument would match with a different hint (the paper's semantics: "If
/// the argument does not match the pattern or the hint is incorrect, the
/// check will fail").
bool verify_match(const std::string& pattern, const std::string& arg,
                  const std::vector<std::uint32_t>& hint);

/// Work metric for the verifier: number of character comparisons a linear
/// verification performs (used by the ablation bench to show verification
/// is O(n) while matching is potentially exponential).
std::size_t verify_cost(const std::string& pattern, const std::string& arg);

/// Syntax check; throws asc::Error on malformed patterns (unclosed '{',
/// nested alternation).
void validate_pattern(const std::string& pattern);

}  // namespace asc::policy
