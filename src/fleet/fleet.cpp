#include "fleet/fleet.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>

#include "apps/libtoy.h"
#include "core/asc.h"
#include "fault/fault.h"
#include "installer/rekeyer.h"
#include "tasm/assembler.h"
#include "util/error.h"
#include "util/executor.h"
#include "util/rng.h"

namespace asc::fleet {

namespace {

void fleet_fs(os::SimFs& fs) {
  auto put = [&](const std::string& path, const std::string& content) {
    auto ino = fs.open("/", path, os::SimFs::kWrOnly | os::SimFs::kCreat | os::SimFs::kTrunc,
                       0644);
    fs.write(static_cast<std::uint32_t>(ino), 0,
             std::vector<std::uint8_t>(content.begin(), content.end()), false);
  };
  put("/lines.txt", "pear\napple\nmango\ncherry\nbanana\n");
  put("/notes.txt", "fleet tenant fixture\nsecond line\n");
  put("/etc/vuln.conf", "mode=list\n");
}

/// The clean reference a lifecycle's runs are compared against.
struct CleanRef {
  bool completed = false;
  int exit_code = 0;
  std::string out;
  std::string err;
  int n_calls = 0;
};

/// One guest, installed once under test_key(). The SignManifest kept next
/// to each installed image is key-independent, so per-tenant keys and
/// genuine mid-run rotations rekey this ONE template (installer::Rekeyer,
/// O(MAC surface)) instead of re-installing per tenant.
struct InstalledHelper {
  std::string path;
  binary::Image image;
  installer::SignManifest manifest;
};
struct GuestArtifacts {
  const fault::GuestProgram* prog = nullptr;
  binary::Image installed;
  installer::SignManifest manifest;
  std::vector<InstalledHelper> helpers;
  CleanRef clean;
};

/// Tight getpid loop: the only fleet guest whose sites actually promote to
/// the Inline tier. Joined to the default pool when FleetConfig::inline_tier
/// is set, so respawn churn exercises tier-state teardown at fleet scale.
fault::GuestProgram fleet_loop_guest(os::Personality p) {
  using namespace asc::apps;
  tasm::Assembler a("pidloop");
  a.func("main");
  a.subi(SP, 4);
  a.movi(R11, 48);
  a.store(SP, 0, R11);
  a.label(".loop");
  a.load(R11, SP, 0);
  a.cmpi(R11, 0);
  a.jz(".done");
  a.call("sys_getpid");
  a.load(R11, SP, 0);
  a.subi(R11, 1);
  a.store(SP, 0, R11);
  a.jmp(".loop");
  a.label(".done");
  a.addi(SP, 4);
  a.movi(R0, 0);
  a.ret();
  emit_libc(a, p);
  fault::GuestProgram g;
  g.name = "pidloop";
  g.image = a.link();
  g.prepare_fs = fleet_fs;
  return g;
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 1099511628211ull;
  }
  return h;
}

}  // namespace

std::vector<fault::GuestProgram> default_fleet_guests(os::Personality p) {
  // Rerun-idempotent, light guests: a respawned lifecycle re-prepares the
  // filesystem and must reproduce the clean reference byte-for-byte.
  // vuln_echo spawns a child, so fleet churn includes nested processes.
  std::vector<fault::GuestProgram> out;
  {
    fault::GuestProgram g;
    g.name = "cat";
    g.image = apps::build_tool_cat(p);
    g.argv = {"/lines.txt", "/notes.txt"};
    g.prepare_fs = fleet_fs;
    out.push_back(std::move(g));
  }
  {
    fault::GuestProgram g;
    g.name = "sort";
    g.image = apps::build_tool_sort(p);
    g.argv = {"/lines.txt"};
    g.prepare_fs = fleet_fs;
    out.push_back(std::move(g));
  }
  {
    fault::GuestProgram g;
    g.name = "cp";
    g.image = apps::build_tool_cp(p);
    g.argv = {"/lines.txt", "/fleet-copy.txt"};
    g.prepare_fs = fleet_fs;
    out.push_back(std::move(g));
  }
  {
    fault::GuestProgram g;
    g.name = "vuln_echo";
    g.image = apps::build_vuln_echo(p);
    g.stdin_data = "/lines.txt\n";
    g.helpers.emplace_back("/bin/ls", apps::build_tool_cat(p));
    g.prepare_fs = fleet_fs;
    out.push_back(std::move(g));
  }
  return out;
}

void AuditPipeline::stream(int tenant, std::string guest,
                           std::vector<os::VerdictRecord> records) {
  Slot& slot = slots_.at(static_cast<std::size_t>(tenant));
  slot.guest = std::move(guest);
  slot.records = std::move(records);
}

AuditPipeline::Merged AuditPipeline::merge() const {
  Merged m;
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t t = 0; t < slots_.size(); ++t) {
    const Slot& slot = slots_[t];
    if (slot.records.empty()) continue;
    ++m.tenants_with_records;
    char tag[48];
    std::snprintf(tag, sizeof tag, "[t%05zu %s] ", t, slot.guest.c_str());
    for (const os::VerdictRecord& rec : slot.records) {
      m.lines.push_back(tag + rec.to_string());
      h = fnv1a(h, m.lines.back());
      m.records.push_back(rec);
    }
  }
  char hex[24];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(h));
  m.digest = hex;
  return m;
}

std::string FleetResult::summary() const {
  char buf[260];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "fleet: %zu tenants, %llu verified syscalls, %llu modeled cycles\n",
                tenants.size(), static_cast<unsigned long long>(total_syscalls),
                static_cast<unsigned long long>(total_cycles));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "churn: rotations=%d monitor-swaps=%d respawns=%d tampered=%d "
                "(detected=%d)\n",
                rotations, swaps, respawns, tampered, tamper_detected);
  out += buf;
  const std::size_t per =
      tenants.empty() ? 0 : total_shard_bytes / tenants.size();
  std::snprintf(buf, sizeof buf,
                "audit: %zu records from %zu tenants, digest=%s\n"
                "shards: %zu bytes total, %zu bytes/tenant\n"
                "oracle trips: %zu\n",
                audit.records.size(), audit.tenants_with_records,
                audit.digest.c_str(), total_shard_bytes, per, trips.size());
  out += buf;
  for (const auto& t : trips) out += "  " + t + "\n";
  return out;
}

FleetResult Driver::run() {
  std::vector<fault::GuestProgram> pool =
      cfg_.guests.empty() ? default_fleet_guests(cfg_.personality) : cfg_.guests;
  if (cfg_.inline_tier && cfg_.guests.empty()) {
    pool.push_back(fleet_loop_guest(cfg_.personality));
  }
  if (pool.empty()) throw Error("fleet: empty guest pool");
  if (cfg_.tenants <= 0) throw Error("fleet: tenants must be positive");

  // ---- install every guest once, harvest clean references serially ----
  std::vector<GuestArtifacts> arts(pool.size());
  for (std::size_t g = 0; g < pool.size(); ++g) {
    GuestArtifacts& art = arts[g];
    art.prog = &pool[g];
    System inst_sys(cfg_.personality);
    installer::InstallResult gi = inst_sys.install(pool[g].image);
    art.installed = std::move(gi.image);
    art.manifest = std::move(gi.manifest);
    for (const auto& [path, img] : pool[g].helpers) {
      installer::InstallResult hi = inst_sys.install(img);
      art.helpers.push_back(
          InstalledHelper{path, std::move(hi.image), std::move(hi.manifest)});
    }
    System sys(cfg_.personality);
    if (pool[g].prepare_fs) pool[g].prepare_fs(sys.kernel().fs());
    for (const auto& h : art.helpers) sys.machine().register_program(h.path, h.image);
    sys.machine().set_cycle_limit(cfg_.cycle_limit);
    const vm::RunResult r =
        sys.machine().run(art.installed, pool[g].argv, pool[g].stdin_data);
    if (!r.completed || r.violation != os::Violation::None) {
      throw Error("fleet: clean reference run of " + pool[g].name +
                  " failed: " + r.violation_detail);
    }
    art.clean.completed = r.completed;
    art.clean.exit_code = r.exit_code;
    art.clean.out = r.stdout_data;
    art.clean.err = r.stderr_data;
    art.clean.n_calls = static_cast<int>(r.syscalls);
    if (r.syscalls == 0) throw Error("fleet: " + pool[g].name + " makes no system calls");
  }

  const util::Rng root(cfg_.seed);
  AuditPipeline pipeline(cfg_.tenants);

  // ---- one tenant lifecycle: its own System, its own shard ----
  auto lifecycle = [&](int tenant) -> TenantVerdict {
    TenantVerdict tv;
    tv.tenant = tenant;
    util::Rng rng = root.derive(0xF1EE7ULL ^ static_cast<std::uint64_t>(tenant));
    const GuestArtifacts& art = arts[rng.next_below(arts.size())];
    tv.guest = art.prog->name;

    // Every draw happens unconditionally, in a fixed order, so a tenant's
    // stream depends only on (seed, tenant) -- never on the churn cadences
    // or on OTHER tenants' plans. The isolation tests rely on this.
    const std::uint64_t rotate_pick = rng.next_u64();
    const std::uint64_t tamper_cls_pick = rng.next_u64();
    const std::uint64_t tamper_call_pick = rng.next_u64();
    const std::uint64_t tamper_seed = rng.next_u64();

    tv.tampered = std::find(cfg_.tamper_tenants.begin(), cfg_.tamper_tenants.end(),
                            tenant) != cfg_.tamper_tenants.end();
    // Staggered churn by cadence; a tampered tenant's fault run owns the
    // pre-syscall hook, so its rotation churn is skipped.
    tv.rotated = !tv.tampered && cfg_.rotate_every > 0 &&
                 tenant % cfg_.rotate_every == cfg_.rotate_every - 1;
    tv.swapped = cfg_.swap_every > 0 && tenant % cfg_.swap_every == cfg_.swap_every - 1;
    tv.respawned =
        cfg_.respawn_every > 0 && tenant % cfg_.respawn_every == cfg_.respawn_every - 1;

    System sys(cfg_.personality);

    // Key material comes from derive()d substreams, never from `rng`
    // itself: the four draws above stay byte-stable whether or not
    // per-tenant keys or genuine rotations are in play.
    crypto::Key128 cur_key = test_key();
    const binary::Image* run_image = &art.installed;
    std::optional<installer::RekeyResult> keyed;  // per-tenant-key template
    std::vector<std::pair<std::string, binary::Image>> keyed_helpers;
    std::optional<installer::RekeyResult> rotated;  // mid-run rotation target
    std::vector<std::pair<std::string, binary::Image>> rotated_helpers;
    crypto::Key128 rot_key{};
    if (cfg_.per_tenant_keys) {
      cur_key = derived_key(
          root.derive(0x4B455953ULL ^ static_cast<std::uint64_t>(tenant)).next_u64());
      keyed = installer::Rekeyer::rekey(art.installed, art.manifest, test_key(), cur_key);
      run_image = &keyed->image;
      for (const auto& h : art.helpers) {
        keyed_helpers.emplace_back(
            h.path,
            installer::Rekeyer::rekey(h.image, h.manifest, test_key(), cur_key).image);
      }
      sys.kernel().set_key(cur_key);
    }
    if (keyed_helpers.empty()) {
      for (const auto& h : art.helpers) sys.machine().register_program(h.path, h.image);
    } else {
      for (const auto& [path, img] : keyed_helpers) sys.machine().register_program(path, img);
    }
    sys.machine().set_cycle_limit(cfg_.cycle_limit);
    if (cfg_.inline_tier) {
      sys.kernel().set_inline_tier(true);
      sys.kernel().set_inline_promote_threshold(2);
    }

    auto trip = [&](const std::string& what) {
      tv.trips.push_back("tenant " + std::to_string(tenant) + " (" + tv.guest + ", " +
                         tv.plan_repr + ", seed=" + std::to_string(cfg_.seed) +
                         "): " + what);
    };

    auto run_once = [&](vm::RunResult& r) -> bool {
      if (art.prog->prepare_fs) art.prog->prepare_fs(sys.kernel().fs());
      try {
        r = sys.machine().run(*run_image, art.prog->argv, art.prog->stdin_data);
      } catch (const std::exception& e) {
        trip(std::string("host crash: ") + e.what());
        return false;
      } catch (...) {
        trip("host crash: non-standard exception");
        return false;
      }
      tv.syscalls += r.syscalls;
      tv.cycles += r.cycles;
      ++tv.runs;
      return true;
    };

    // Invariant oracles, audited after EVERY run: between runs no process is
    // alive, so every pid-keyed shard structure must be empty and the watch
    // accounting must balance.
    auto audit_bookkeeping = [&](const vm::RunResult& r, const char* where) {
      const auto& w = r.final_watch;
      if (w.live_ranges != 0 || w.live_refs != 0) {
        trip(std::string(where) + ": teardown leaked " + std::to_string(w.live_ranges) +
             " watch ranges / " + std::to_string(w.live_refs) + " refs");
      }
      if (w.registered != w.released) {
        trip(std::string(where) + ": watch accounting unbalanced (registered=" +
             std::to_string(w.registered) + " released=" + std::to_string(w.released) + ")");
      }
      if (sys.kernel().shadow().size() != 0) {
        trip(std::string(where) + ": shadow entries for dead pids");
      }
      if (sys.kernel().call_cache().size() != 0) {
        trip(std::string(where) + ": cache entries for dead pids");
      }
      if (sys.kernel().tracked_health() != 0) {
        trip(std::string(where) + ": health records for dead pids");
      }
      if (sys.kernel().inline_sites() != 0) {
        trip(std::string(where) + ": inline sites for dead pids");
      }
    };

    auto behaves_like_clean = [&](const vm::RunResult& r) {
      return r.completed == art.clean.completed && r.exit_code == art.clean.exit_code &&
             r.stdout_data == art.clean.out && r.stderr_data == art.clean.err;
    };

    auto violations_since = [&](std::size_t mark) {
      std::vector<const os::VerdictRecord*> out;
      const auto& recs = sys.kernel().audit_log();
      for (std::size_t i = mark; i < recs.size(); ++i) {
        if (recs[i].kind == os::AuditKind::Violation) out.push_back(&recs[i]);
      }
      return out;
    };

    // ---- run 1: the fault run (tampered) or a churned clean run ----
    std::size_t audit_mark = sys.kernel().audit_log().size();
    vm::RunResult r1;
    if (tv.tampered) {
      // Guest tamper drawn from the tenant's substream: verification-byte
      // classes that always find a target on a rewritten call, so the
      // lifecycle deterministically fail-stops.
      fault::FaultSpec spec;
      spec.cls = (tamper_cls_pick & 1) ? fault::MutationClass::DescriptorFlip
                                       : fault::MutationClass::CallMacFlip;
      const std::uint64_t span =
          std::max<std::uint64_t>(1, std::min<std::uint64_t>(
                                         4, static_cast<std::uint64_t>(art.clean.n_calls)));
      spec.trigger_call = 1 + static_cast<int>(tamper_call_pick % span);
      spec.seed = tamper_seed;
      tv.plan_repr = fault::spec_repr(spec);
      fault::FaultInjector inj(spec);
      inj.arm(sys.machine());
      if (!run_once(r1)) return tv;
      audit_bookkeeping(r1, "fault run");
      const auto viols = violations_since(audit_mark);
      if (viols.empty()) {
        trip("tamper was not detected [repro " + tv.guest + " " + tv.plan_repr + "]");
      } else {
        tv.violation = viols.front()->violation;
        const auto& exp = fault::expected_violations(spec.cls);
        if (std::find(exp.begin(), exp.end(), tv.violation) == exp.end()) {
          trip("wrong verdict " + os::violation_name(tv.violation) + " [repro " +
               tv.guest + " " + tv.plan_repr + "]");
        }
        if (!viols.front()->killed) {
          trip("tamper detected but did not fail-stop [repro " + tv.guest + " " +
               tv.plan_repr + "]");
        }
      }
      sys.machine().pre_syscall_hook = nullptr;
      sys.kernel().set_stage_hook({});
    } else {
      // Staggered mid-run key rotation, the GENUINE kind: at the drawn call
      // the tenant asks Kernel::rekey to move the live process to a fresh
      // key with the Rekeyer's re-signed view. A mid-trap request defers to
      // the next trap boundary, so no trap ever verifies under mixed
      // old/new material -- the guest must still complete identically.
      int calls = 0;
      const int rotate_at =
          2 + static_cast<int>(rotate_pick %
                               static_cast<std::uint64_t>(std::max(1, art.clean.n_calls)));
      if (tv.rotated) {
        rot_key = derived_key(
            root.derive(0x524F54ULL ^ static_cast<std::uint64_t>(tenant)).next_u64());
        rotated = installer::Rekeyer::rekey(*run_image, art.manifest, cur_key, rot_key);
        for (const auto& h : art.helpers) {
          const binary::Image& base =
              keyed_helpers.empty() ? h.image
                                    : keyed_helpers[rotated_helpers.size()].second;
          rotated_helpers.emplace_back(
              h.path, installer::Rekeyer::rekey(base, h.manifest, cur_key, rot_key).image);
        }
        tv.plan_repr = "rekey@" + std::to_string(rotate_at);
        sys.machine().pre_syscall_hook = [&, helpers_pending = false](
                                             os::Process& p, std::uint32_t) mutable {
          // A deferred rekey lands inside the next depth-0 trap; swap the
          // helper registrations just before it does, so any spawn after
          // the key swap hands the kernel a child signed under the new key.
          auto swap_helpers = [&] {
            for (const auto& [path, img] : rotated_helpers) {
              sys.machine().register_program(path, img);
            }
          };
          if (helpers_pending && sys.kernel().trap_depth() == 0) {
            swap_helpers();
            helpers_pending = false;
          }
          if (++calls == rotate_at) {
            const bool now = sys.kernel().rekey(p, rot_key, rotated->view);
            if (now) {
              swap_helpers();
            } else {
              helpers_pending = !rotated_helpers.empty();
            }
          }
        };
      }
      if (!run_once(r1)) return tv;
      sys.machine().pre_syscall_hook = nullptr;
      audit_bookkeeping(r1, "run 1");
      if (!violations_since(audit_mark).empty()) {
        trip("clean lifecycle yielded a Violation verdict");
      }
      if (!behaves_like_clean(r1)) trip("run 1 diverged from the clean reference");
      // Respawn runs must match the kernel's key: once the rekey has been
      // APPLIED the rekeyed template is the current image; a still-pending
      // request stays queued and lands at run 2's first trap, where the old
      // template still verifies under the old key.
      if (tv.rotated && sys.kernel().rekey_counters().rekeys > 0) {
        run_image = &rotated->image;
      }
    }

    // ---- churn between runs: monitor swap ----
    if (tv.swapped) sys.kernel().set_enforcement(os::Enforcement::Asc);

    // ---- run 2: respawn on the SAME kernel (teardown must have left the
    // shard coherent), also the tampered tenants' recovery run ----
    if (tv.respawned || tv.tampered) {
      audit_mark = sys.kernel().audit_log().size();
      vm::RunResult r2;
      if (run_once(r2)) {
        audit_bookkeeping(r2, "run 2");
        if (!violations_since(audit_mark).empty()) {
          trip("respawn run yielded a Violation verdict");
        }
        if (!behaves_like_clean(r2)) trip("respawn run diverged from the clean reference");
      }
    }

    tv.shard_bytes = sys.kernel().tenant_state().approx_bytes();
    pipeline.stream(tenant, tv.guest, sys.kernel().audit_log());

    char line[240];
    std::snprintf(line, sizeof line,
                  "#%05d %-9s runs=%d calls=%llu rot=%d swap=%d spwn=%d plan=%s v=%s "
                  "bytes=%zu trips=%zu",
                  tenant, tv.guest.c_str(), tv.runs,
                  static_cast<unsigned long long>(tv.syscalls), tv.rotated ? 1 : 0,
                  tv.swapped ? 1 : 0, tv.respawned ? 1 : 0, tv.plan_repr.c_str(),
                  os::violation_name(tv.violation).c_str(), tv.shard_bytes,
                  tv.trips.size());
    tv.trace_line = line;
    return tv;
  };

  // ---- fan the lifecycles out; merge serially in tenant order ----
  std::vector<TenantVerdict> tvs =
      util::resolve_executor(cfg_.executor)
          .parallel_map<TenantVerdict>(static_cast<std::size_t>(cfg_.tenants),
                                       [&](std::size_t t) {
                                         return lifecycle(static_cast<int>(t));
                                       });

  FleetResult result;
  for (TenantVerdict& tv : tvs) {
    result.total_syscalls += tv.syscalls;
    result.total_cycles += tv.cycles;
    if (tv.rotated) ++result.rotations;
    if (tv.swapped) ++result.swaps;
    if (tv.respawned) ++result.respawns;
    if (tv.tampered) {
      ++result.tampered;
      if (tv.violation != os::Violation::None) ++result.tamper_detected;
    }
    result.total_shard_bytes += tv.shard_bytes;
    result.trips.insert(result.trips.end(), tv.trips.begin(), tv.trips.end());
    result.verdict_trace.push_back(tv.trace_line);
    result.tenants.push_back(std::move(tv));
  }
  result.audit = pipeline.merge();
  return result;
}

}  // namespace asc::fleet
