// Fleet driver: thousands of tenant kernels, one aggregated audit stream.
//
// The tenant-sharding refactor (os/tenant.h) makes every Kernel's
// enforcement state a self-contained TenantState shard: MAC key, verified-
// call cache, policy-state shadow, health map, and audit log all live in the
// shard, and the CMAC key-schedule memo -- the only process-global piece --
// is sharded internally (crypto/cmac.h). The fleet driver is the proof of
// that design at scale: it runs 1k-100k simulated guest lifecycles, each on
// its own System (= its own kernel = its own shard), fanned out over the
// work-stealing util::Executor, with mixed workloads and churn --
// spawn/exec/teardown storms, staggered mid-run key rotations, monitor
// swaps -- and streams every tenant's VerdictRecords into one aggregated
// audit pipeline.
//
// The pipeline is lock-light by construction: each tenant's records land in
// a slot indexed by tenant id, written only by the worker that owns that
// tenant (the executor's parallel_for invokes each index exactly once, so
// slots are disjoint and no lock is taken on the hot path). A serial merge
// then walks the slots in ascending tenant order, producing a record stream,
// formatted lines, and a digest that are byte-identical at ANY job count --
// jobs=1 is the executor's exact serial reference, and tests assert
// jobs 1/2/8 agree.
//
// Invariant oracles audit every tenant kernel after every run, exactly as
// the chaos engine does (fault/chaos.h): watch-range accounting balances,
// the cache/shadow/health maps reference only live pids, clean lifecycles
// reproduce the installed guest's clean reference byte-for-byte, and a
// tampered tenant fail-stops with an expected Violation class while
// perturbing NOTHING outside its own shard.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/campaign.h"
#include "os/auditlog.h"

namespace asc::util {
class Executor;
}

namespace asc::fleet {

struct FleetConfig {
  std::uint64_t seed = 1;
  /// Tenant lifecycles to drive. Each is one System: install-verified guest,
  /// one or two runs (respawn churn), teardown, oracle audit.
  int tenants = 1000;
  os::Personality personality = os::Personality::LinuxSim;
  std::uint64_t cycle_limit = 200'000'000;
  /// Churn cadences (0 disables). Tenant t rotates its key mid-run when
  /// t % rotate_every == rotate_every - 1; the strike call is drawn from the
  /// tenant's substream, so rotations are staggered across the fleet. A
  /// rotation is GENUINE: the tenant rekeys to a fresh key derived from its
  /// own substream, swapping in a Rekeyer-re-signed view via Kernel::rekey
  /// at the drawn call (deferred to the next trap boundary if it lands
  /// mid-trap), and the guest must still complete identically.
  int rotate_every = 7;
  /// Tenant t swaps in a fresh monitor between runs on this cadence.
  int swap_every = 5;
  /// Tenant t tears its guest down and respawns it (second run on the SAME
  /// kernel) on this cadence.
  int respawn_every = 3;
  /// Tenants that run a tampered lifecycle (guest-tamper FaultSpec drawn
  /// from the tenant's substream). Membership is config-driven, not drawn
  /// from the RNG, so adding a tenant here NEVER shifts any other tenant's
  /// stream -- the isolation tests rely on this.
  std::vector<int> tamper_tenants;
  /// Guest pool (empty = default_fleet_guests()).
  std::vector<fault::GuestProgram> guests;
  /// Executor the lifecycles fan out over (nullptr = process-global pool).
  util::Executor* executor = nullptr;
  /// Enable the trap-less Inline tier (os/tiertable.h) on every tenant
  /// kernel, with a low promotion threshold so sites promote within a run,
  /// and add a getpid-loop guest to the default pool (the workload that
  /// actually promotes). The post-run oracles then also assert every
  /// tenant's tier table holds zero inline sites between runs -- respawn
  /// churn must tear tier state all the way down. Off by default: legacy
  /// fleet streams stay byte-identical.
  bool inline_tier = false;
  /// Give every tenant its OWN MAC key: the shared guest templates are
  /// installed once under test_key(), then each tenant rekeys them to a key
  /// derived from its substream (installer::Rekeyer -- O(MAC surface), no
  /// re-analysis) before its first run. Tenant isolation becomes
  /// cryptographic, not just structural: no tenant's kernel accepts another
  /// tenant's images. Off by default: legacy fleet streams stay
  /// byte-identical.
  bool per_tenant_keys = false;
};

/// One tenant lifecycle, classified. The per-tenant row of the fleet.
struct TenantVerdict {
  int tenant = 0;
  std::string guest;
  int runs = 0;
  std::uint64_t syscalls = 0;  // verified syscalls across all runs
  std::uint64_t cycles = 0;    // modeled guest cycles across all runs
  bool rotated = false;
  bool swapped = false;
  bool respawned = false;
  bool tampered = false;
  /// Tamper reproducer (spec_repr) for tampered tenants, "-" otherwise.
  std::string plan_repr = "-";
  os::Violation violation = os::Violation::None;
  /// The tenant shard's retained bytes after teardown
  /// (Kernel::tenant_state().approx_bytes()).
  std::size_t shard_bytes = 0;
  /// Invariant-oracle failures (empty = lifecycle sound).
  std::vector<std::string> trips;
  /// One-line digest, byte-identical across executor widths.
  std::string trace_line;
};

/// The lock-light aggregated audit pipeline. stream() is called by the
/// worker that owns tenant t -- slot t is written exactly once, by exactly
/// one worker, so no lock is taken. merge() is the serial phase: slots are
/// walked in ascending tenant order, giving a deterministic aggregate.
class AuditPipeline {
 public:
  explicit AuditPipeline(int tenants) : slots_(static_cast<std::size_t>(tenants)) {}

  /// Stream tenant t's audit records into its slot (owning worker only).
  void stream(int tenant, std::string guest, std::vector<os::VerdictRecord> records);

  struct Merged {
    std::vector<os::VerdictRecord> records;  // tenant order, then log order
    std::vector<std::string> lines;          // "[t00042 cat] ALERT ..." views
    std::string digest;                      // FNV-1a over the lines, hex
    std::size_t tenants_with_records = 0;
  };
  /// Serial merge in ascending tenant order. Byte-identical at any job
  /// count: slot content depends only on (seed, tenant), never on the
  /// schedule.
  Merged merge() const;

  std::size_t slots() const { return slots_.size(); }

 private:
  struct Slot {
    std::string guest;
    std::vector<os::VerdictRecord> records;
  };
  std::vector<Slot> slots_;
};

struct FleetResult {
  std::vector<TenantVerdict> tenants;
  std::uint64_t total_syscalls = 0;
  std::uint64_t total_cycles = 0;
  int rotations = 0;
  int swaps = 0;
  int respawns = 0;
  int tampered = 0;
  int tamper_detected = 0;
  /// Sum of every tenant shard's retained bytes (capacity planning).
  std::size_t total_shard_bytes = 0;
  /// Flattened oracle trips from every tenant (empty = fleet sound).
  std::vector<std::string> trips;
  /// One line per tenant, in tenant order; the determinism surface the
  /// fleet tests compare across jobs=1/2/8.
  std::vector<std::string> verdict_trace;
  /// The aggregated audit pipeline's merge.
  AuditPipeline::Merged audit;

  bool ok() const { return trips.empty(); }
  std::string summary() const;
};

/// Light mixed pool for fleet-scale runs: the file tools plus a spawning
/// guest so churn includes nested child processes (spawn/exec/teardown).
std::vector<fault::GuestProgram> default_fleet_guests(os::Personality p);

class Driver {
 public:
  explicit Driver(FleetConfig cfg) : cfg_(std::move(cfg)) {}

  const FleetConfig& config() const { return cfg_; }

  /// Drive all tenant lifecycles and aggregate. Deterministic for a fixed
  /// config at any executor width.
  FleetResult run();

 private:
  FleetConfig cfg_;
};

}  // namespace asc::fleet
