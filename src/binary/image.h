// TXE -- the Toy eXecutable format.
//
// TXE stands in for ELF in this reproduction. A TXE image has a fixed section
// plan with generous, non-overlapping virtual address windows:
//
//   .text    0x08048000   code
//   .rodata  0x08248000   read-only constants (string literals live here)
//   .data    0x08348000   initialized writable data
//   .asdata  0x08448000   section ADDED BY THE INSTALLER: authenticated
//                         strings, predecessor sets, call MACs, policy state
//   .bss     0x08548000   zero-initialized (size only)
//   heap     0x08648000   grows up via brk
//   stack    0x087ffff0   grows down
//
// Fixed windows mean data addresses survive code rewriting unchanged; only
// text-internal addresses move when the installer inserts instructions, which
// is exactly the remapping the relocation table enables.
//
// Like PLTO, the installer REQUIRES a relocatable image (every 32-bit slot
// holding an absolute address is listed in `relocs`) and emits a
// non-relocatable, statically-linked, authenticated image.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace asc::binary {

enum class SectionKind : std::uint8_t { Text = 0, Rodata = 1, Data = 2, AsData = 3, Bss = 4 };

/// Base virtual address of each section window.
std::uint32_t section_base(SectionKind kind);

/// Maximum size of each section window.
std::uint32_t section_limit(SectionKind kind);

inline constexpr std::uint32_t kHeapBase = 0x08648000;
// 64KB of addressable slack above the stack top so that runaway writes
// (e.g. overflow payloads spilling past the argv area) stay inside the
// address space instead of faulting.
inline constexpr std::uint32_t kStackTop = 0x087f0000;
inline constexpr std::uint32_t kAddressSpaceBase = 0x08000000;
inline constexpr std::uint32_t kAddressSpaceEnd = 0x08800000;

struct Section {
  SectionKind kind = SectionKind::Text;
  std::vector<std::uint8_t> bytes;  // empty for Bss
  std::uint32_t bss_size = 0;       // only meaningful for Bss

  std::uint32_t vaddr() const { return section_base(kind); }
  std::uint32_t size() const {
    return kind == SectionKind::Bss ? bss_size : static_cast<std::uint32_t>(bytes.size());
  }
};

enum class SymbolKind : std::uint8_t { Function = 0, Object = 1 };

struct Symbol {
  std::string name;
  std::uint32_t addr = 0;
  std::uint32_t size = 0;
  SymbolKind kind = SymbolKind::Function;
};

/// A relocation marks a 32-bit little-endian slot (at virtual address `slot`)
/// whose stored value is an absolute virtual address. The stored value is
/// already resolved; the table only records *where addresses live* so a
/// rewriter can (a) symbolize immediates during disassembly and (b) remap
/// them after code motion.
struct Reloc {
  std::uint32_t slot = 0;

  bool operator==(const Reloc&) const = default;
};

class Image {
 public:
  std::string name;                // program name, e.g. "bison"
  std::uint32_t entry = 0;         // virtual address of _start
  bool relocatable = false;        // has a (complete) relocation table
  bool authenticated = false;      // rewritten to use authenticated syscalls
  std::uint16_t program_id = 0;    // installer-assigned (Frankenstein defence)
  std::vector<Section> sections;   // at most one per kind
  std::vector<Symbol> symbols;
  std::vector<Reloc> relocs;

  /// Section accessors; the non-const form creates the section on demand.
  const Section* find_section(SectionKind kind) const;
  Section& section(SectionKind kind);

  /// Symbol lookup by name; nullptr if absent.
  const Symbol* find_symbol(const std::string& name) const;
  /// Innermost symbol containing `addr` (functions only), nullptr if none.
  const Symbol* function_at(std::uint32_t addr) const;

  /// Which section window contains `addr`, if any.
  std::optional<SectionKind> section_containing(std::uint32_t addr) const;

  /// Read a NUL-terminated string at `addr` from rodata/data/asdata content.
  /// Returns nullopt if addr is out of the initialized ranges or unterminated.
  std::optional<std::string> cstring_at(std::uint32_t addr) const;

  /// Read `n` initialized bytes at `addr`; nullopt if out of range.
  std::optional<std::vector<std::uint8_t>> bytes_at(std::uint32_t addr, std::uint32_t n) const;

  /// Serialization (the "file format"): round-trips everything above.
  std::vector<std::uint8_t> serialize() const;
  static Image deserialize(std::span<const std::uint8_t> file);
};

std::string section_name(SectionKind kind);

}  // namespace asc::binary
