#include "binary/image.h"

#include <algorithm>

#include "util/error.h"
#include "util/hex.h"

namespace asc::binary {

std::uint32_t section_base(SectionKind kind) {
  switch (kind) {
    case SectionKind::Text: return 0x08048000;
    case SectionKind::Rodata: return 0x08248000;
    case SectionKind::Data: return 0x08348000;
    case SectionKind::AsData: return 0x08448000;
    case SectionKind::Bss: return 0x08548000;
  }
  throw Error("section_base: bad kind");
}

std::uint32_t section_limit(SectionKind kind) {
  switch (kind) {
    case SectionKind::Text: return 0x08248000 - 0x08048000;
    case SectionKind::Rodata: return 0x08348000 - 0x08248000;
    case SectionKind::Data: return 0x08448000 - 0x08348000;
    case SectionKind::AsData: return 0x08548000 - 0x08448000;
    case SectionKind::Bss: return 0x08648000 - 0x08548000;
  }
  throw Error("section_limit: bad kind");
}

std::string section_name(SectionKind kind) {
  switch (kind) {
    case SectionKind::Text: return ".text";
    case SectionKind::Rodata: return ".rodata";
    case SectionKind::Data: return ".data";
    case SectionKind::AsData: return ".asdata";
    case SectionKind::Bss: return ".bss";
  }
  return "?";
}

const Section* Image::find_section(SectionKind kind) const {
  for (const auto& s : sections) {
    if (s.kind == kind) return &s;
  }
  return nullptr;
}

Section& Image::section(SectionKind kind) {
  for (auto& s : sections) {
    if (s.kind == kind) return s;
  }
  sections.push_back(Section{kind, {}, 0});
  return sections.back();
}

const Symbol* Image::find_symbol(const std::string& sym_name) const {
  for (const auto& s : symbols) {
    if (s.name == sym_name) return &s;
  }
  return nullptr;
}

const Symbol* Image::function_at(std::uint32_t addr) const {
  const Symbol* best = nullptr;
  for (const auto& s : symbols) {
    if (s.kind != SymbolKind::Function) continue;
    if (addr >= s.addr && addr < s.addr + s.size) {
      if (best == nullptr || s.addr > best->addr) best = &s;
    }
  }
  return best;
}

std::optional<SectionKind> Image::section_containing(std::uint32_t addr) const {
  for (const auto& s : sections) {
    if (addr >= s.vaddr() && addr < s.vaddr() + s.size()) return s.kind;
  }
  return std::nullopt;
}

std::optional<std::string> Image::cstring_at(std::uint32_t addr) const {
  for (const auto& s : sections) {
    if (s.kind == SectionKind::Bss) continue;
    if (addr < s.vaddr() || addr >= s.vaddr() + s.size()) continue;
    std::string out;
    for (std::uint32_t i = addr - s.vaddr(); i < s.bytes.size(); ++i) {
      if (s.bytes[i] == 0) return out;
      out.push_back(static_cast<char>(s.bytes[i]));
    }
    return std::nullopt;  // unterminated
  }
  return std::nullopt;
}

std::optional<std::vector<std::uint8_t>> Image::bytes_at(std::uint32_t addr, std::uint32_t n) const {
  for (const auto& s : sections) {
    if (s.kind == SectionKind::Bss) continue;
    if (addr < s.vaddr() || addr + n > s.vaddr() + s.size()) continue;
    const std::uint32_t off = addr - s.vaddr();
    return std::vector<std::uint8_t>(s.bytes.begin() + off, s.bytes.begin() + off + n);
  }
  return std::nullopt;
}

namespace {
constexpr std::uint32_t kMagic = 0x30455854;  // "TXE0"

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  util::put_u32(out, static_cast<std::uint32_t>(s.size()));
  for (char c : s) out.push_back(static_cast<std::uint8_t>(c));
}

std::string get_string(std::span<const std::uint8_t> buf, std::size_t& off) {
  const std::uint32_t n = util::get_u32(buf, off);
  off += 4;
  if (off + n > buf.size()) throw DecodeError("TXE: truncated string");
  std::string s(reinterpret_cast<const char*>(buf.data() + off), n);
  off += n;
  return s;
}
}  // namespace

std::vector<std::uint8_t> Image::serialize() const {
  std::vector<std::uint8_t> out;
  util::put_u32(out, kMagic);
  put_string(out, name);
  util::put_u32(out, entry);
  out.push_back(relocatable ? 1 : 0);
  out.push_back(authenticated ? 1 : 0);
  util::put_u16(out, program_id);

  util::put_u32(out, static_cast<std::uint32_t>(sections.size()));
  for (const auto& s : sections) {
    out.push_back(static_cast<std::uint8_t>(s.kind));
    util::put_u32(out, s.bss_size);
    util::put_u32(out, static_cast<std::uint32_t>(s.bytes.size()));
    util::put_bytes(out, s.bytes);
  }

  util::put_u32(out, static_cast<std::uint32_t>(symbols.size()));
  for (const auto& s : symbols) {
    put_string(out, s.name);
    util::put_u32(out, s.addr);
    util::put_u32(out, s.size);
    out.push_back(static_cast<std::uint8_t>(s.kind));
  }

  util::put_u32(out, static_cast<std::uint32_t>(relocs.size()));
  for (const auto& r : relocs) util::put_u32(out, r.slot);
  return out;
}

Image Image::deserialize(std::span<const std::uint8_t> file) {
  std::size_t off = 0;
  if (util::get_u32(file, off) != kMagic) throw DecodeError("TXE: bad magic");
  off += 4;
  Image img;
  img.name = get_string(file, off);
  img.entry = util::get_u32(file, off);
  off += 4;
  if (off + 4 > file.size()) throw DecodeError("TXE: truncated header");
  img.relocatable = file[off++] != 0;
  img.authenticated = file[off++] != 0;
  img.program_id = util::get_u16(file, off);
  off += 2;

  const std::uint32_t nsec = util::get_u32(file, off);
  off += 4;
  for (std::uint32_t i = 0; i < nsec; ++i) {
    if (off >= file.size()) throw DecodeError("TXE: truncated section");
    Section s;
    s.kind = static_cast<SectionKind>(file[off++]);
    if (static_cast<std::uint8_t>(s.kind) > 4) throw DecodeError("TXE: bad section kind");
    s.bss_size = util::get_u32(file, off);
    off += 4;
    const std::uint32_t n = util::get_u32(file, off);
    off += 4;
    if (off + n > file.size()) throw DecodeError("TXE: truncated section bytes");
    s.bytes.assign(file.begin() + off, file.begin() + off + n);
    off += n;
    if (s.size() > section_limit(s.kind)) throw DecodeError("TXE: section exceeds window");
    img.sections.push_back(std::move(s));
  }

  const std::uint32_t nsym = util::get_u32(file, off);
  off += 4;
  for (std::uint32_t i = 0; i < nsym; ++i) {
    Symbol s;
    s.name = get_string(file, off);
    s.addr = util::get_u32(file, off);
    off += 4;
    s.size = util::get_u32(file, off);
    off += 4;
    if (off >= file.size()) throw DecodeError("TXE: truncated symbol");
    s.kind = static_cast<SymbolKind>(file[off++]);
    img.symbols.push_back(std::move(s));
  }

  const std::uint32_t nrel = util::get_u32(file, off);
  off += 4;
  for (std::uint32_t i = 0; i < nrel; ++i) {
    img.relocs.push_back(Reloc{util::get_u32(file, off)});
    off += 4;
  }
  return img;
}

}  // namespace asc::binary
