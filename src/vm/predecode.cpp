#include "vm/predecode.h"

#include "isa/decode.h"
#include "os/costmodel.h"

namespace asc::vm {

namespace {

using isa::Op;

/// Direct Op -> UOp mapping for the unfused single-instruction micro-ops.
/// (Dense switch instead of a table: the builder is off the hot path and
/// the compiler checks exhaustiveness for us.)
UOp uop_of(Op op) {
  switch (op) {
    case Op::Nop: return UOp::Nop;
    case Op::Halt: return UOp::Halt;
    case Op::Syscall: return UOp::Syscall;
    case Op::Movi: return UOp::Movi;
    case Op::Lea: return UOp::Lea;
    case Op::Mov: return UOp::Mov;
    case Op::Add: return UOp::Add;
    case Op::Sub: return UOp::Sub;
    case Op::Mul: return UOp::Mul;
    case Op::Div: return UOp::Div;
    case Op::Mod: return UOp::Mod;
    case Op::And: return UOp::And;
    case Op::Or: return UOp::Or;
    case Op::Xor: return UOp::Xor;
    case Op::Shl: return UOp::Shl;
    case Op::Shr: return UOp::Shr;
    case Op::Addi: return UOp::Addi;
    case Op::Subi: return UOp::Subi;
    case Op::Muli: return UOp::Muli;
    case Op::Andi: return UOp::Andi;
    case Op::Ori: return UOp::Ori;
    case Op::Xori: return UOp::Xori;
    case Op::Shli: return UOp::Shli;
    case Op::Shri: return UOp::Shri;
    case Op::Not: return UOp::Not;
    case Op::Neg: return UOp::Neg;
    case Op::Cmp: return UOp::Cmp;
    case Op::Cmpi: return UOp::Cmpi;
    case Op::Load: return UOp::Load;
    case Op::Store: return UOp::Store;
    case Op::Loadb: return UOp::Loadb;
    case Op::Storeb: return UOp::Storeb;
    case Op::Push: return UOp::Push;
    case Op::Pop: return UOp::Pop;
    case Op::Call: return UOp::Call;
    case Op::Callr: return UOp::Callr;
    case Op::Ret: return UOp::Ret;
    case Op::Jmp: return UOp::Jmp;
    case Op::Jmpr: return UOp::Jmpr;
    case Op::Jz: return UOp::Jz;
    case Op::Jnz: return UOp::Jnz;
    case Op::Jlt: return UOp::Jlt;
    case Op::Jle: return UOp::Jle;
    case Op::Jgt: return UOp::Jgt;
    case Op::Jge: return UOp::Jge;
  }
  return UOp::Slow;  // unreachable: decode() only yields defined opcodes
}

bool ends_block(Op op) {
  return op == Op::Halt || op == Op::Syscall || isa::is_control_transfer(op);
}

/// Blocks are capped so a straight-line megafunction cannot make one build
/// arbitrarily expensive; a Chain micro-op continues in the next block.
constexpr std::size_t kMaxOpsPerBlock = 128;

/// Whole-cache reset valve: a pathological self-modifier that keeps
/// invalidating and rebuilding would otherwise accumulate dead blocks
/// forever (invalidated blocks are deliberately never freed mid-run so the
/// engine's current-block pointer stays valid).
constexpr std::size_t kFlushThreshold = 65536;

}  // namespace

void PredecodeCache::set_fusion(bool on) {
  if (fuse_ == on) return;
  fuse_ = on;
  flush();
}

void PredecodeCache::attach(Memory& mem) {
  // Reinstalled every run entry: the callback captures `this`, and the
  // owning Process may have moved since the last run.
  mem.set_exec_watch([this](std::uint32_t addr, std::uint32_t len) { on_exec_write(addr, len); });
}

PredecodedBlock& PredecodeCache::lookup(std::uint32_t pc, Memory& mem,
                                        const os::CostModel& cost) {
  if (auto it = index_.find(pc); it != index_.end() && it->second->valid) return *it->second;
  if (blocks_.size() >= kFlushThreshold) flush();
  return build(pc, mem, cost);
}

PredecodedBlock& PredecodeCache::next_block(PredecodedBlock& from, std::uint32_t pc, Memory& mem,
                                            const os::CostModel& cost) {
  for (const auto& l : from.links)
    if (l.gen == gen_ && l.pc == pc && l.block != nullptr) return *l.block;
  // Capture the generation before lookup(): a size-valve flush inside it
  // frees every block including `from`, in which case the link refill below
  // must be skipped (gen_ is bumped by exactly the paths that free or
  // invalidate blocks, so an unchanged gen_ proves `from` is still alive).
  const std::uint64_t g = gen_;
  PredecodedBlock& nb = lookup(pc, mem, cost);
  if (gen_ == g) {
    auto& slot = from.links[from.link_rr & 1];
    from.link_rr ^= 1;
    slot = {pc, &nb, gen_};
  }
  return nb;
}

PredecodedBlock& PredecodeCache::build(std::uint32_t pc, Memory& mem,
                                       const os::CostModel& cost) {
  auto owned = std::make_unique<PredecodedBlock>();
  PredecodedBlock& b = *owned;
  blocks_.push_back(std::move(owned));
  b.start = pc;
  b.valid = true;

  const auto flat = mem.flat();
  std::uint32_t cur = pc;
  bool terminated = false;
  while (!terminated && b.ops.size() < kMaxOpsPerBlock) {
    if (!mem.in_range(cur)) {
      // Out-of-range fetch: the Slow op replays Cpu::step for the exact
      // "pc out of range" fault.
      MicroOp m;
      m.uop = UOp::Slow;
      m.pc = m.mid_pc = m.next_pc = cur;
      b.ops.push_back(m);
      terminated = true;
      break;
    }
    const auto dec = isa::try_decode(flat, Memory::index_of(cur));
    if (!dec) {
      // Invalid opcode / truncated encoding: replay Cpu::step so the exact
      // DecodeError (which propagates out of Machine::run uncaught, unlike
      // GuestFault) is reproduced from the current bytes.
      MicroOp m;
      m.uop = UOp::Slow;
      m.pc = m.mid_pc = m.next_pc = cur;
      b.ops.push_back(m);
      terminated = true;
      break;
    }
    const isa::Instr& ins = dec->ins;
    MicroOp m;
    m.uop = uop_of(ins.op);
    m.rd = ins.rd;
    m.rs = ins.rs;
    m.imm = ins.imm;
    m.pc = cur;
    m.mid_pc = m.next_pc = cur + static_cast<std::uint32_t>(dec->size);
    m.cost = cost.instr_cost(ins.op);
    terminated = ends_block(ins.op);

    // Superinstruction fusion: peek one instruction ahead for the dominant
    // pairs. Jumps INTO the second half are unaffected -- they enter their
    // own block keyed at that address; fusion only binds the two halves
    // when control flows through them consecutively, with the inter-half
    // cycle-limit check and accounting preserved by the engine.
    if (fuse_ && !terminated &&
        (ins.op == Op::Cmp || ins.op == Op::Cmpi || ins.op == Op::Movi || ins.op == Op::Load ||
         ins.op == Op::Push) &&
        mem.in_range(m.next_pc)) {
      if (const auto dec2 = isa::try_decode(flat, Memory::index_of(m.next_pc))) {
        const isa::Instr& ins2 = dec2->ins;
        UOp fused = UOp::kCount;  // sentinel: no fusion
        if ((ins.op == Op::Cmp || ins.op == Op::Cmpi) && isa::is_conditional_branch(ins2.op)) {
          fused = ins.op == Op::Cmp ? UOp::CmpJcc : UOp::CmpiJcc;
          m.aux = static_cast<std::uint8_t>(static_cast<std::uint8_t>(ins2.op) -
                                            static_cast<std::uint8_t>(Op::Jz));
        } else if (ins.op == Op::Movi && ins2.op == Op::Syscall) {
          fused = UOp::MoviSyscall;
        } else if (ins.op == Op::Load && ins2.rd == ins.rd &&
                   (ins2.op == Op::Cmpi || ins2.op == Op::Addi || ins2.op == Op::Subi)) {
          fused = ins2.op == Op::Cmpi  ? UOp::LoadCmpi
                  : ins2.op == Op::Addi ? UOp::LoadAddi
                                        : UOp::LoadSubi;
        } else if (ins.op == Op::Push && ins2.op == Op::Call) {
          fused = UOp::PushCall;
        }
        if (fused != UOp::kCount) {
          m.uop = fused;
          m.imm2 = ins2.imm;
          m.next_pc = m.mid_pc + static_cast<std::uint32_t>(dec2->size);
          m.cost2 = cost.instr_cost(ins2.op);
          terminated = ends_block(ins2.op);
          ++stats_.superinstructions;
        }
      }
    }

    b.ops.push_back(m);
    cur = m.next_pc;
  }
  if (!terminated) {
    // Size cap hit mid-straight-line-code: chain into a successor block
    // with no architectural effect.
    MicroOp m;
    m.uop = UOp::Chain;
    m.pc = m.mid_pc = m.next_pc = cur;
    b.ops.push_back(m);
  }
  b.end = cur;

  index_[b.start] = &b;
  if (b.end > b.start) {
    for (std::uint32_t pg = page_of(b.start); pg <= page_of(b.end - 1); ++pg)
      pages_[pg].push_back(&b);
    mem.expand_exec_envelope(b.start, b.end);
  }
  ++stats_.blocks;
  stats_.uops += b.ops.size();
  return b;
}

void PredecodeCache::on_exec_write(std::uint32_t addr, std::uint32_t len) {
  ++stats_.exec_writes;
  if (len == 0) return;
  bool any = false;
  for (std::uint32_t pg = page_of(addr); pg <= page_of(addr + len - 1); ++pg) {
    auto it = pages_.find(pg);
    if (it == pages_.end()) continue;
    auto& vec = it->second;
    for (std::size_t k = 0; k < vec.size();) {
      PredecodedBlock* blk = vec[k];
      if (blk->valid && addr < blk->end && addr + len > blk->start) {
        blk->valid = false;
        index_.erase(blk->start);
        ++stats_.invalidations;
        any = true;
      }
      // Drop stale entries (blocks invalidated here or via another page)
      // lazily; the block object itself stays allocated until the next
      // flush so in-flight engine pointers remain dereferenceable.
      if (!blk->valid) {
        vec[k] = vec.back();
        vec.pop_back();
      } else {
        ++k;
      }
    }
    if (vec.empty()) pages_.erase(it);
  }
  if (any) ++gen_;  // sever every inline successor link at once
}

void PredecodeCache::flush() {
  blocks_.clear();
  index_.clear();
  pages_.clear();
  ++gen_;
  ++stats_.flushes;
}

void PredecodeCache::flush_for_copy() {
  blocks_.clear();
  index_.clear();
  pages_.clear();
  ++gen_;
}

}  // namespace asc::vm
