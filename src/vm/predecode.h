// Predecoded threaded-code streams for the TSA interpreter.
//
// The switch interpreter (vm/cpu.cpp) pays a full fetch + bounds check +
// variable-length decode for every retired instruction. The threaded engine
// (vm/engine.cpp) instead predecodes each basic block ONCE into a stream of
// fixed-size micro-ops -- operands extracted, modeled cycle cost snapshotted,
// dominant two-instruction patterns fused into superinstructions -- and then
// dispatches straight over that stream. The PredecodeCache below owns the
// per-process block store, the lazy block builder, and the self-modifying-code
// invalidation that keeps predecoded spans coherent with guest memory.
//
// Invalidation rides the same notify_write() spine as the tier lattice's
// refcounted data watches, but through a SEPARATE exec-watch channel
// (vm/memory.h): the lattice's WatchStats are a bookkeeping-balance surface
// audited by the chaos oracles, so the engine must not perturb the
// registered/released ledger. A write overlapping a predecoded span marks the
// overlapped blocks invalid BEFORE the bytes change; the engine then demotes
// that span to a fresh decode, exactly as the switch interpreter re-decodes
// every instruction from current bytes.
//
// Contract: the engine is architecturally invisible. Modeled cycles,
// instruction counts, fault behavior, audit traces, and final guest state are
// byte-identical to the switch interpreter at every dispatch setting; only
// host wall-clock changes. The per-op `cost` fields snapshot the kernel's
// CostModel at decode time -- the model is fixed for the duration of a run
// (mutable_cost() is a between-runs tuning surface), and each run starts with
// a fresh per-process cache.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/isa.h"
#include "vm/memory.h"

namespace asc::os {
struct CostModel;
}  // namespace asc::os

namespace asc::vm {

/// Micro-op opcodes: one per TSA instruction plus the fused superinstructions
/// and the Slow fallback. Keep the numbering dense -- the engine indexes a
/// computed-goto table with it.
enum class UOp : std::uint8_t {
  Nop,
  Halt,
  Syscall,
  Movi,
  Lea,
  Mov,
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Addi,
  Subi,
  Muli,
  Andi,
  Ori,
  Xori,
  Shli,
  Shri,
  Not,
  Neg,
  Cmp,
  Cmpi,
  Load,
  Store,
  Loadb,
  Storeb,
  Push,
  Pop,
  Call,
  Callr,
  Ret,
  Jmp,
  Jmpr,
  Jz,
  Jnz,
  Jlt,
  Jle,
  Jgt,
  Jge,
  // ---- superinstructions (dominant decode pairs) ----
  CmpJcc,        // cmp rd, rs ; j<cc> imm2
  CmpiJcc,       // cmpi rd, imm ; j<cc> imm2
  MoviSyscall,   // movi rd, imm ; syscall
  LoadCmpi,      // load rd, [rs+imm] ; cmpi rd, imm2
  LoadAddi,      // load rd, [rs+imm] ; addi rd, imm2
  LoadSubi,      // load rd, [rs+imm] ; subi rd, imm2
  PushCall,      // push rd ; call imm2
  // ---- engine-internal (no architectural effect, zero cost) ----
  Chain,         // block hit the size cap: continue decoding at `pc`
  Slow,          // undecodable here: replay one Cpu::step for exact faults
  kCount,
};

inline constexpr std::size_t kNumUOps = static_cast<std::size_t>(UOp::kCount);

/// Condition codes for the fused compare-and-branch pair, in Jz..Jge order.
enum class Cc : std::uint8_t { Z, Nz, Lt, Le, Gt, Ge };

/// One predecoded micro-op. Fused pairs carry both halves' operands and
/// costs; `mid_pc` is the address of the second half (== next_pc when
/// unfused), so the engine can resume at the exact architectural boundary
/// if the cycle limit lands between the halves or the first half
/// invalidates its own block.
struct MicroOp {
  UOp uop = UOp::Nop;
  isa::Reg rd = 0;
  isa::Reg rs = 0;
  std::uint8_t aux = 0;       // Cc of the fused branch (CmpJcc/CmpiJcc)
  std::uint32_t imm = 0;      // first-half immediate / offset / target
  std::uint32_t imm2 = 0;     // second-half immediate / branch or call target
  std::uint32_t pc = 0;       // address of this (pair's first) instruction
  std::uint32_t mid_pc = 0;   // address after the first half
  std::uint32_t next_pc = 0;  // address after the whole micro-op
  std::uint64_t cost = 0;     // modeled cycles of the first half
  std::uint64_t cost2 = 0;    // modeled cycles of the second half (fused only)
};

/// A predecoded basic block: the micro-ops for the straight-line span
/// [start, end), entered only at `start`. Blocks keyed by entry address may
/// overlap byte-wise (jumps into the middle of another block's span simply
/// decode their own block) -- variable-length encodings make overlapping
/// decodings independent, so no dedup is needed for correctness.
struct PredecodedBlock {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
  bool valid = false;
  std::vector<MicroOp> ops;

  /// Two-entry inline cache of successor blocks, validated against the
  /// cache generation so invalidations (which bump the generation) sever
  /// every link at once without walking the link graph.
  struct Link {
    std::uint32_t pc = 0;
    PredecodedBlock* block = nullptr;
    std::uint64_t gen = 0;
  };
  std::array<Link, 2> links{};
  std::uint8_t link_rr = 0;  // round-robin victim selector
};

/// Counters for one run of the threaded engine (surfaced via RunResult and
/// `asctool run --stats`). All zeros under the switch interpreter.
struct PredecodeStats {
  std::uint64_t blocks = 0;           // blocks decoded (incl. rebuilds)
  std::uint64_t uops = 0;             // micro-ops emitted
  std::uint64_t superinstructions = 0;  // fused pairs among them
  std::uint64_t invalidations = 0;    // blocks demoted by guest writes
  std::uint64_t exec_writes = 0;      // writes that hit the exec envelope
  std::uint64_t flushes = 0;          // whole-cache resets (size valve)
};

/// Per-process store of predecoded blocks with lazy building and
/// write-watch-driven invalidation. Owned by os::Process; one cache per
/// address space, alive exactly as long as the bytes it mirrors.
class PredecodeCache {
 public:
  /// Superinstruction fusion toggle (set by the Machine before each run;
  /// flushes the cache when the setting changes so stale fused streams
  /// cannot linger).
  void set_fusion(bool on);
  bool fusion() const { return fuse_; }

  /// Install the exec-watch callback into `mem` (idempotent). Must be
  /// called before the first lookup of a run.
  void attach(Memory& mem);

  /// The valid block entered at `pc`, building it if needed (non-const
  /// Memory: building grows the exec-watch envelope). Never returns an
  /// invalid block. Undecodable entry points yield a single Slow op.
  PredecodedBlock& lookup(std::uint32_t pc, Memory& mem, const os::CostModel& cost);

  /// Successor dispatch: consult `from`'s inline link cache, falling back
  /// to (and refilling from) a full lookup.
  PredecodedBlock& next_block(PredecodedBlock& from, std::uint32_t pc, Memory& mem,
                              const os::CostModel& cost);

  const PredecodeStats& stats() const { return stats_; }

  /// Test hook: number of live (valid) blocks currently indexed.
  std::size_t indexed_blocks() const { return index_.size(); }

  /// Copying a Process copies its Memory; the predecoded mirror starts
  /// empty in the copy (blocks hold pointers into the source cache).
  PredecodeCache() = default;
  PredecodeCache(const PredecodeCache& other) : fuse_(other.fuse_) {}
  PredecodeCache& operator=(const PredecodeCache& other) {
    if (this != &other) {
      flush_for_copy();
      fuse_ = other.fuse_;
    }
    return *this;
  }
  PredecodeCache(PredecodeCache&&) = default;
  PredecodeCache& operator=(PredecodeCache&&) = default;

 private:
  PredecodedBlock& build(std::uint32_t pc, Memory& mem, const os::CostModel& cost);
  void on_exec_write(std::uint32_t addr, std::uint32_t len);
  void flush_for_copy();
  void flush();
  static std::uint32_t page_of(std::uint32_t addr) { return addr >> 12; }

  bool fuse_ = true;
  std::uint64_t gen_ = 1;  // bumped on every invalidation/flush; severs links
  std::vector<std::unique_ptr<PredecodedBlock>> blocks_;
  std::unordered_map<std::uint32_t, PredecodedBlock*> index_;        // entry pc -> block
  std::unordered_map<std::uint32_t, std::vector<PredecodedBlock*>> pages_;  // 4K page -> blocks
  PredecodeStats stats_;
};

}  // namespace asc::vm
