// TSA interpreter.
//
// Executes one process against guest memory, trapping into the kernel on
// SYSCALL. Instructions are fetched from guest memory with no execute
// permission check (data and stack are executable -- see vm/memory.h), so
// injected shellcode runs; the point of the paper is that it cannot make
// useful system calls.
#pragma once

#include <cstdint>

#include "os/kernel.h"
#include "os/process.h"

namespace asc::vm {

class Cpu {
 public:
  /// Exit code of a process stopped by Op::Halt: 128 + SIGABRT, the shell
  /// convention for "killed by abort". Halt is the guest-bug stop (normal
  /// termination is the Exit syscall), so it reports like an abort().
  static constexpr int kHaltExitCode = 128 + 6;

  /// Execute one instruction of `p`. Traps into `kernel` on SYSCALL.
  /// Throws asc::GuestFault on illegal operations (the Machine converts
  /// this into an abnormal termination).
  static void step(os::Process& p, os::Kernel& kernel);
};

}  // namespace asc::vm
