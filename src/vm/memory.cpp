#include "vm/memory.h"

namespace asc::vm {

Memory::Memory() : bytes_(binary::kAddressSpaceEnd - binary::kAddressSpaceBase, 0) {}

std::size_t Memory::index_of(std::uint32_t addr) { return addr - binary::kAddressSpaceBase; }

bool Memory::in_range(std::uint32_t addr, std::uint32_t n) const {
  // addr may lie anywhere in the 32-bit space; guard the subtraction below
  // against underflow for addresses past the end.
  return addr >= binary::kAddressSpaceBase && addr <= binary::kAddressSpaceEnd &&
         n <= binary::kAddressSpaceEnd - addr;
}

void Memory::check(std::uint32_t addr, std::uint32_t n) const {
  if (!in_range(addr, n)) {
    throw GuestFault("guest memory access out of range at 0x" + std::to_string(addr));
  }
}

void Memory::load_image(const binary::Image& image) {
  for (const auto& s : image.sections) {
    if (s.kind == binary::SectionKind::Bss) continue;  // already zeroed
    check(s.vaddr(), static_cast<std::uint32_t>(s.bytes.size()));
    std::copy(s.bytes.begin(), s.bytes.end(), bytes_.begin() + static_cast<std::ptrdiff_t>(index_of(s.vaddr())));
  }
}

std::uint8_t Memory::r8(std::uint32_t addr) const {
  check(addr, 1);
  return bytes_[index_of(addr)];
}

void Memory::w8(std::uint32_t addr, std::uint8_t value) {
  check(addr, 1);
  notify_write(addr, 1);
  bytes_[index_of(addr)] = value;
}

std::uint32_t Memory::r32(std::uint32_t addr) const {
  check(addr, 4);
  const std::size_t i = index_of(addr);
  return static_cast<std::uint32_t>(bytes_[i]) | static_cast<std::uint32_t>(bytes_[i + 1]) << 8 |
         static_cast<std::uint32_t>(bytes_[i + 2]) << 16 |
         static_cast<std::uint32_t>(bytes_[i + 3]) << 24;
}

void Memory::w32(std::uint32_t addr, std::uint32_t value) {
  check(addr, 4);
  notify_write(addr, 4);
  const std::size_t i = index_of(addr);
  bytes_[i] = static_cast<std::uint8_t>(value);
  bytes_[i + 1] = static_cast<std::uint8_t>(value >> 8);
  bytes_[i + 2] = static_cast<std::uint8_t>(value >> 16);
  bytes_[i + 3] = static_cast<std::uint8_t>(value >> 24);
}

std::vector<std::uint8_t> Memory::read_bytes(std::uint32_t addr, std::uint32_t n) const {
  check(addr, n);
  const std::size_t i = index_of(addr);
  return std::vector<std::uint8_t>(bytes_.begin() + static_cast<std::ptrdiff_t>(i),
                                   bytes_.begin() + static_cast<std::ptrdiff_t>(i + n));
}

void Memory::read_bytes(std::uint32_t addr, std::uint32_t n, std::uint8_t* out) const {
  check(addr, n);
  const std::size_t i = index_of(addr);
  std::copy(bytes_.begin() + static_cast<std::ptrdiff_t>(i),
            bytes_.begin() + static_cast<std::ptrdiff_t>(i + n), out);
}

void Memory::write_bytes(std::uint32_t addr, std::span<const std::uint8_t> bytes) {
  check(addr, static_cast<std::uint32_t>(bytes.size()));
  notify_write(addr, static_cast<std::uint32_t>(bytes.size()));
  std::copy(bytes.begin(), bytes.end(), bytes_.begin() + static_cast<std::ptrdiff_t>(index_of(addr)));
}

void Memory::watch(std::uint32_t addr, std::uint32_t len) {
  if (len == 0) return;
  ++watch_registered_;
  for (auto& w : watches_) {
    if (w.addr == addr && w.len == len) {
      ++w.refs;
      return;
    }
  }
  watches_.push_back({addr, len, 1});
  if (watches_.size() > watch_peak_) watch_peak_ = watches_.size();
  if (addr < watch_min_) watch_min_ = addr;
  if (addr + len > watch_max_) watch_max_ = addr + len;
}

void Memory::unwatch(std::uint32_t addr, std::uint32_t len) {
  for (auto it = watches_.begin(); it != watches_.end(); ++it) {
    if (it->addr != addr || it->len != len) continue;
    ++watch_released_;
    if (--it->refs == 0) {
      watches_.erase(it);
      recompute_watch_envelope();
    }
    return;
  }
}

Memory::WatchStats Memory::watch_stats() const {
  WatchStats s;
  s.live_ranges = watches_.size();
  for (const auto& w : watches_) s.live_refs += w.refs;
  s.peak_ranges = watch_peak_;
  s.registered = watch_registered_;
  s.released = watch_released_;
  return s;
}

void Memory::clear_watches() {
  watches_.clear();
  watch_min_ = 0xffffffffu;
  watch_max_ = 0;
}

void Memory::recompute_watch_envelope() {
  watch_min_ = 0xffffffffu;
  watch_max_ = 0;
  for (const auto& w : watches_) {
    if (w.addr < watch_min_) watch_min_ = w.addr;
    if (w.addr + w.len > watch_max_) watch_max_ = w.addr + w.len;
  }
}

void Memory::notify_write(std::uint32_t addr, std::uint32_t n) {
  // Exec channel first: predecoded spans must be invalidated before any
  // data-watch eviction logic runs (and, like the data watch, before the
  // bytes themselves change).
  if (on_exec_write_ && addr < exec_max_ && addr + n > exec_min_) on_exec_write_(addr, n);
  if (watch_max_ == 0 || !on_watched_write_) return;
  if (addr >= watch_max_ || addr + n <= watch_min_) return;  // outside the envelope
  for (const auto& w : watches_) {
    if (addr < w.addr + w.len && w.addr < addr + n) {
      // The callback may evict cache entries, which unwatches ranges and
      // mutates watches_ -- return without touching the iterator again.
      on_watched_write_(addr, n);
      return;
    }
  }
}

std::string Memory::read_cstr(std::uint32_t addr, std::uint32_t max_len) const {
  std::string out;
  for (std::uint32_t i = 0; i < max_len; ++i) {
    const std::uint8_t b = r8(addr + i);
    if (b == 0) return out;
    out.push_back(static_cast<char>(b));
  }
  throw GuestFault("unterminated string in guest memory");
}

}  // namespace asc::vm
