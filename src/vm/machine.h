// Machine = kernel + program registry + process runner.
//
// The Machine is the top-level simulation object an experiment constructs:
// pick a personality and enforcement mode, register installed programs under
// paths (the "file system" of executables, enabling the spawn syscall and the
// Andrew-style multiprogram benchmark), then run programs to completion and
// inspect RunResult.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "binary/image.h"
#include "os/kernel.h"
#include "os/process.h"
#include "vm/memory.h"
#include "vm/predecode.h"

namespace asc::vm {

/// How the Machine executes guest instructions. Both produce byte-identical
/// architectural results (modeled cycles, audit traces, final state); they
/// differ only in host wall-clock. See vm/engine.cpp.
enum class DispatchMode : std::uint8_t {
  Switch,    // reference decode-and-switch interpreter (vm/cpu.cpp)
  Threaded,  // predecoded threaded-code engine (vm/engine.cpp)
};

struct RunResult {
  bool completed = false;  // ran to exit() (even nonzero); false on kill/fault/limit
  int exit_code = 0;
  os::Violation violation = os::Violation::None;
  std::string violation_detail;
  std::string stdout_data;
  std::string stderr_data;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t syscalls = 0;
  bool cycle_limit_hit = false;
  /// Watch-range accounting of the process's Memory, captured AFTER kernel
  /// teardown: live_ranges/live_refs must be zero (every cache/shadow
  /// registration returned), which the chaos invariant oracles assert.
  vm::Memory::WatchStats final_watch;
  /// Predecode counters of the threaded engine (all zeros under Switch).
  vm::PredecodeStats predecode;

  bool killed_by_monitor() const { return violation != os::Violation::None; }
};

class Machine {
 public:
  explicit Machine(os::Personality personality, os::CostModel cost = {});

  os::Kernel& kernel() { return kernel_; }
  const os::Kernel& kernel() const { return kernel_; }

  /// Register an executable under a path (e.g. "/bin/gzip") for spawn() and
  /// run_path(). The image is copied.
  void register_program(const std::string& path, binary::Image image);
  const binary::Image* find_program(const std::string& path) const;

  /// Run an image to completion. Re-entrant with respect to the kernel: a
  /// guest spawn() nests another run inside the parent's trap (up to the
  /// spawn depth limit), so the trap pipeline must keep per-trap state
  /// stack-local (see os/trapcontext.h).
  RunResult run(const binary::Image& image, const std::vector<std::string>& argv = {},
                const std::string& stdin_data = {});

  /// Run a registered program.
  RunResult run_path(const std::string& path, const std::vector<std::string>& argv = {},
                     const std::string& stdin_data = {});

  void set_cycle_limit(std::uint64_t limit) { cycle_limit_ = limit; }

  /// Select the execution engine. Defaults to Threaded (override with
  /// ASC_DISPATCH=switch in the environment). Runs with pre_instr_hook or
  /// pre_syscall_hook installed always take the switch interpreter: the
  /// hooks' contract is per-instruction observation, which the threaded
  /// engine deliberately does not provide.
  void set_dispatch(DispatchMode mode) { dispatch_ = mode; }
  DispatchMode dispatch() const { return dispatch_; }
  /// Superinstruction fusion toggle for the threaded engine (differential
  /// tests pit fused and unfused streams against the reference).
  void set_superinstructions(bool on) { superinstructions_ = on; }
  bool superinstructions() const { return superinstructions_; }

  /// Test hooks. `pre_syscall_hook` fires just before the kernel sees each
  /// SYSCALL (after the trap, before checking) -- attack tests use it to
  /// tamper with registers/memory at precise moments. `pre_instr_hook`
  /// fires before every instruction.
  std::function<void(os::Process&)> pre_instr_hook;
  std::function<void(os::Process&, std::uint32_t call_site)> pre_syscall_hook;

 private:
  RunResult run_internal(const binary::Image& image, const std::vector<std::string>& argv,
                         const std::string& stdin_data, int depth);

  os::Kernel kernel_;
  std::map<std::string, binary::Image> registry_;
  std::uint64_t cycle_limit_ = 4'000'000'000ull;
  int next_pid_ = 1;
  int spawn_depth_ = 0;
  DispatchMode dispatch_;
  bool superinstructions_ = true;
};

/// Process-wide default dispatch mode: Threaded, unless ASC_DISPATCH=switch.
DispatchMode default_dispatch_mode();

/// Set up the initial stack: argv strings + pointer array; returns
/// {argc in r1, argv pointer in r2} by mutating the process.
void setup_initial_stack(os::Process& p, const std::vector<std::string>& argv);

}  // namespace asc::vm
