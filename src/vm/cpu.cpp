#include "vm/cpu.h"

#include "isa/decode.h"
#include "util/error.h"

namespace asc::vm {

using isa::Instr;
using isa::Op;

void Cpu::step(os::Process& p, os::Kernel& kernel) {
  auto& cpu = p.cpu;
  auto& mem = p.mem;
  auto& regs = cpu.regs;

  if (!mem.in_range(cpu.pc)) throw GuestFault("pc out of range");
  const auto dec = isa::decode(mem.flat(), Memory::index_of(cpu.pc));
  const Instr& ins = dec.ins;
  const std::uint32_t next_pc = cpu.pc + static_cast<std::uint32_t>(dec.size);

  p.cycles += kernel.cost().instr_cost(ins.op);
  ++p.instr_count;

  auto signed_of = [](std::uint32_t v) { return static_cast<std::int32_t>(v); };

  switch (ins.op) {
    case Op::Nop:
      break;
    case Op::Halt:
      p.running = false;
      p.exit_code = Cpu::kHaltExitCode;
      p.violation_detail = "halt instruction";
      return;
    case Op::Syscall:
      cpu.pc = next_pc;
      kernel.on_syscall(p, cpu.pc - static_cast<std::uint32_t>(dec.size));
      return;

    case Op::Movi: regs[ins.rd] = ins.imm; break;
    case Op::Lea: regs[ins.rd] = ins.imm; break;
    case Op::Mov: regs[ins.rd] = regs[ins.rs]; break;
    case Op::Add: regs[ins.rd] += regs[ins.rs]; break;
    case Op::Sub: regs[ins.rd] -= regs[ins.rs]; break;
    case Op::Mul: regs[ins.rd] *= regs[ins.rs]; break;
    case Op::Div: {
      if (regs[ins.rs] == 0) throw GuestFault("division by zero");
      regs[ins.rd] = static_cast<std::uint32_t>(signed_of(regs[ins.rd]) / signed_of(regs[ins.rs]));
      break;
    }
    case Op::Mod: {
      if (regs[ins.rs] == 0) throw GuestFault("division by zero");
      regs[ins.rd] = static_cast<std::uint32_t>(signed_of(regs[ins.rd]) % signed_of(regs[ins.rs]));
      break;
    }
    case Op::And: regs[ins.rd] &= regs[ins.rs]; break;
    case Op::Or: regs[ins.rd] |= regs[ins.rs]; break;
    case Op::Xor: regs[ins.rd] ^= regs[ins.rs]; break;
    case Op::Shl: regs[ins.rd] <<= regs[ins.rs] & 31u; break;
    case Op::Shr: regs[ins.rd] >>= regs[ins.rs] & 31u; break;

    case Op::Addi: regs[ins.rd] += ins.imm; break;
    case Op::Subi: regs[ins.rd] -= ins.imm; break;
    case Op::Muli: regs[ins.rd] *= ins.imm; break;
    case Op::Andi: regs[ins.rd] &= ins.imm; break;
    case Op::Ori: regs[ins.rd] |= ins.imm; break;
    case Op::Xori: regs[ins.rd] ^= ins.imm; break;
    case Op::Shli: regs[ins.rd] <<= ins.imm & 31u; break;
    case Op::Shri: regs[ins.rd] >>= ins.imm & 31u; break;
    case Op::Not: regs[ins.rd] = ~regs[ins.rd]; break;
    case Op::Neg: regs[ins.rd] = static_cast<std::uint32_t>(-signed_of(regs[ins.rd])); break;

    case Op::Cmp: {
      cpu.zf = regs[ins.rd] == regs[ins.rs];
      cpu.nf = signed_of(regs[ins.rd]) < signed_of(regs[ins.rs]);
      break;
    }
    case Op::Cmpi: {
      cpu.zf = regs[ins.rd] == ins.imm;
      cpu.nf = signed_of(regs[ins.rd]) < signed_of(ins.imm);
      break;
    }

    case Op::Load: regs[ins.rd] = mem.r32(regs[ins.rs] + ins.imm); break;
    case Op::Store: mem.w32(regs[ins.rs] + ins.imm, regs[ins.rd]); break;
    case Op::Loadb: regs[ins.rd] = mem.r8(regs[ins.rs] + ins.imm); break;
    case Op::Storeb: mem.w8(regs[ins.rs] + ins.imm, static_cast<std::uint8_t>(regs[ins.rd])); break;

    case Op::Push:
      regs[isa::kSp] -= 4;
      mem.w32(regs[isa::kSp], regs[ins.rd]);
      break;
    case Op::Pop:
      regs[ins.rd] = mem.r32(regs[isa::kSp]);
      regs[isa::kSp] += 4;
      break;

    case Op::Call:
      regs[isa::kSp] -= 4;
      mem.w32(regs[isa::kSp], next_pc);
      cpu.pc = ins.imm;
      return;
    case Op::Callr:
      regs[isa::kSp] -= 4;
      mem.w32(regs[isa::kSp], next_pc);
      cpu.pc = regs[ins.rd];
      return;
    case Op::Ret:
      cpu.pc = mem.r32(regs[isa::kSp]);
      regs[isa::kSp] += 4;
      return;

    case Op::Jmp: cpu.pc = ins.imm; return;
    case Op::Jmpr: cpu.pc = regs[ins.rd]; return;
    case Op::Jz: cpu.pc = cpu.zf ? ins.imm : next_pc; return;
    case Op::Jnz: cpu.pc = !cpu.zf ? ins.imm : next_pc; return;
    case Op::Jlt: cpu.pc = cpu.nf ? ins.imm : next_pc; return;
    case Op::Jle: cpu.pc = (cpu.nf || cpu.zf) ? ins.imm : next_pc; return;
    case Op::Jgt: cpu.pc = (!cpu.nf && !cpu.zf) ? ins.imm : next_pc; return;
    case Op::Jge: cpu.pc = !cpu.nf ? ins.imm : next_pc; return;
  }
  cpu.pc = next_pc;
}

}  // namespace asc::vm
