#include "vm/machine.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

#include "isa/isa.h"
#include "util/error.h"
#include "vm/cpu.h"
#include "vm/engine.h"

namespace asc::vm {

DispatchMode default_dispatch_mode() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read once before threads start
  const char* env = std::getenv("ASC_DISPATCH");
  if (env != nullptr && std::strcmp(env, "switch") == 0) return DispatchMode::Switch;
  return DispatchMode::Threaded;
}

Machine::Machine(os::Personality personality, os::CostModel cost)
    : kernel_(personality, cost), dispatch_(default_dispatch_mode()) {
  // Wire spawn once: the child shares the kernel (and thus the filesystem
  // and the event log) but gets its own address space and process state.
  // The parent's accounting absorbs the child's, so end-to-end workload
  // measurements (Andrew benchmark) include spawned work.
  //
  // Re-entrancy contract: this handler runs from inside the parent's trap
  // (Kernel::on_syscall -> dispatch -> sys Spawn) and re-enters the kernel
  // for every child syscall, stacking one TrapContext per nesting level.
  // Because trap state lives in those stack-local contexts -- never in
  // kernel members -- the parent's in-flight trap (sysno, call site, args)
  // is intact when the child returns, and post-spawn audit records cite the
  // parent's own call. Tested by TrapPipelineSpawn.
  kernel_.set_spawn_handler([this](os::Process& parent, const std::string& path,
                                   const std::vector<std::string>& args) -> std::int64_t {
    const binary::Image* img = find_program(path);
    if (img == nullptr) return os::SimFs::kErrNoEnt;
    RunResult child = run_internal(*img, args, "", spawn_depth_ + 1);
    parent.cycles += child.cycles;
    parent.syscall_count += child.syscalls;
    parent.stdout_data += child.stdout_data;
    parent.stderr_data += child.stderr_data;
    if (child.violation != os::Violation::None) return -1000;  // child killed by monitor
    return child.completed ? child.exit_code : -1001;
  });
}

void Machine::register_program(const std::string& path, binary::Image image) {
  registry_[path] = std::move(image);
}

const binary::Image* Machine::find_program(const std::string& path) const {
  auto it = registry_.find(path);
  return it == registry_.end() ? nullptr : &it->second;
}

void setup_initial_stack(os::Process& p, const std::vector<std::string>& argv) {
  std::uint32_t sp = binary::kStackTop;
  std::vector<std::uint32_t> ptrs;
  for (const auto& arg : argv) {
    sp -= static_cast<std::uint32_t>(arg.size()) + 1;
    std::vector<std::uint8_t> bytes(arg.begin(), arg.end());
    bytes.push_back(0);
    p.mem.write_bytes(sp, bytes);
    ptrs.push_back(sp);
  }
  sp &= ~3u;
  // argv array (argv[argc] = 0 terminator).
  sp -= 4;
  p.mem.w32(sp, 0);
  for (auto it = ptrs.rbegin(); it != ptrs.rend(); ++it) {
    sp -= 4;
    p.mem.w32(sp, *it);
  }
  const std::uint32_t argv_addr = sp;
  p.cpu.regs[isa::kSp] = sp - 16;  // small gap below the argv block
  p.cpu.regs[1] = static_cast<std::uint32_t>(argv.size());
  p.cpu.regs[2] = argv_addr;
}

RunResult Machine::run(const binary::Image& image, const std::vector<std::string>& argv,
                       const std::string& stdin_data) {
  return run_internal(image, argv, stdin_data, 0);
}

RunResult Machine::run_path(const std::string& path, const std::vector<std::string>& argv,
                            const std::string& stdin_data) {
  const binary::Image* img = find_program(path);
  if (img == nullptr) throw Error("Machine::run_path: no program registered at " + path);
  return run_internal(*img, argv, stdin_data, 0);
}

RunResult Machine::run_internal(const binary::Image& image, const std::vector<std::string>& argv,
                                const std::string& stdin_data, int depth) {
  if (depth > 8) {
    RunResult r;
    r.violation_detail = "spawn depth limit";
    return r;
  }
  const int saved_depth = spawn_depth_;
  spawn_depth_ = depth;

  auto proc = std::make_unique<os::Process>();
  os::Process& p = *proc;
  p.pid = next_pid_++;
  p.name = image.name;
  p.program_id = image.program_id;
  p.authenticated_image = image.authenticated;
  p.mem.load_image(image);
  p.cpu.pc = image.entry;
  p.stdin_data.assign(stdin_data.begin(), stdin_data.end());
  if (const auto* bss = image.find_section(binary::SectionKind::Bss); bss != nullptr) {
    (void)bss;  // heap starts at the fixed base regardless
  }
  setup_initial_stack(p, argv);

  RunResult res;
  // The hooks' contract is per-instruction observation, which the threaded
  // engine deliberately does not provide -- hooked runs (attack tests) take
  // the reference interpreter regardless of the dispatch setting.
  const bool threaded = dispatch_ == DispatchMode::Threaded && !pre_instr_hook &&
                        !pre_syscall_hook;
  try {
    if (threaded) {
      p.predecode.set_fusion(superinstructions_);
      if (run_predecoded(p, kernel_, cycle_limit_) == EngineExit::CycleLimit) {
        res.cycle_limit_hit = true;
      }
    } else {
      while (p.running) {
        if (p.cycles > cycle_limit_) {
          res.cycle_limit_hit = true;
          break;
        }
        if (pre_instr_hook) pre_instr_hook(p);
        if (pre_syscall_hook && p.mem.in_range(p.cpu.pc) &&
            p.mem.r8(p.cpu.pc) == static_cast<std::uint8_t>(isa::Op::Syscall)) {
          pre_syscall_hook(p, p.cpu.pc);
        }
        Cpu::step(p, kernel_);
      }
    }
    if (!res.cycle_limit_hit && p.violation == os::Violation::None &&
        p.violation_detail.empty()) {
      res.completed = true;
    }
  } catch (const GuestFault& f) {
    res.completed = false;
    res.violation_detail = std::string("guest fault: ") + f.what();
  }

  // Process teardown: the kernel must drop every cached verification for
  // this pid (its address space -- the bytes the cache vouches for -- dies
  // with it).
  kernel_.end_process(p.pid);

  res.final_watch = p.mem.watch_stats();
  res.predecode = p.predecode.stats();
  // Teardown must leave zero watched ranges: a leak means an eviction path
  // (cache, shadow, or quarantine) kept a registration past the process.
  assert(res.final_watch.live_ranges == 0 &&
         "process teardown left live watch ranges");

  res.exit_code = p.exit_code;
  res.violation = p.violation;
  if (res.violation_detail.empty()) res.violation_detail = p.violation_detail;
  res.stdout_data = std::move(p.stdout_data);
  res.stderr_data = std::move(p.stderr_data);
  res.cycles = p.cycles;
  res.instructions = p.instr_count;
  res.syscalls = p.syscall_count;
  spawn_depth_ = saved_depth;
  return res;
}

}  // namespace asc::vm
