// Threaded-code execution engine.
//
// Runs a process over the predecoded micro-op streams of its
// vm::PredecodeCache (see vm/predecode.h for the invalidation and
// byte-identity contract). Dispatch is computed-goto where the compiler
// supports GNU label-values, with a portable switch fallback sharing the
// same handler bodies; build with -DASC_NO_COMPUTED_GOTO to force the
// fallback (the differential tests exercise both against the switch
// interpreter).
#pragma once

#include <cstdint>

namespace asc::os {
class Kernel;
struct Process;
}  // namespace asc::os

namespace asc::vm {

enum class EngineExit : std::uint8_t {
  Stopped,     // p.running went false (exit/halt/violation fail-stop)
  CycleLimit,  // p.cycles exceeded the limit; cpu.pc is the next instruction
};

/// Execute `p` until it stops or exceeds `cycle_limit`, equivalently to
/// `while (p.running) { if (p.cycles > cycle_limit) break; Cpu::step(p, k); }`
/// but over predecoded blocks. Throws exactly what that loop would throw
/// (GuestFault, DecodeError) with identical Process state at the throw.
EngineExit run_predecoded(os::Process& p, os::Kernel& kernel, std::uint64_t cycle_limit);

}  // namespace asc::vm
