// Flat guest address space for one simulated process.
//
// The guest sees addresses in [kAddressSpaceBase, kAddressSpaceEnd); the host
// backs that window with a single byte vector. All accesses are bounds
// checked and raise asc::GuestFault (which the VM converts into an abnormal
// guest termination, and the kernel-side checker converts into a policy
// violation when triggered by a syscall argument).
//
// Deliberately NO page permissions: like the paper's threat model, data and
// stack are writable AND executable, so code-injection attacks are possible
// and must be stopped by system call checking, not by W^X.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "binary/image.h"
#include "util/error.h"

namespace asc::vm {

class Memory {
 public:
  Memory();

  /// Copy the image's sections into the address space.
  void load_image(const binary::Image& image);

  std::uint8_t r8(std::uint32_t addr) const;
  void w8(std::uint32_t addr, std::uint8_t value);
  std::uint32_t r32(std::uint32_t addr) const;
  void w32(std::uint32_t addr, std::uint32_t value);

  /// Bulk accessors. Throw GuestFault when any byte is out of range.
  std::vector<std::uint8_t> read_bytes(std::uint32_t addr, std::uint32_t n) const;
  void write_bytes(std::uint32_t addr, std::span<const std::uint8_t> bytes);

  /// NUL-terminated string, at most `max_len` bytes (fault if unterminated).
  std::string read_cstr(std::uint32_t addr, std::uint32_t max_len = 4096) const;

  /// Read-only view of the whole space (used by the VM instruction fetch).
  std::span<const std::uint8_t> flat() const { return bytes_; }
  static std::size_t index_of(std::uint32_t addr);
  bool in_range(std::uint32_t addr, std::uint32_t n = 1) const;

 private:
  void check(std::uint32_t addr, std::uint32_t n) const;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace asc::vm
