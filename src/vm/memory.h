// Flat guest address space for one simulated process.
//
// The guest sees addresses in [kAddressSpaceBase, kAddressSpaceEnd); the host
// backs that window with a single byte vector. All accesses are bounds
// checked and raise asc::GuestFault (which the VM converts into an abnormal
// guest termination, and the kernel-side checker converts into a policy
// violation when triggered by a syscall argument).
//
// Deliberately NO page permissions: like the paper's threat model, data and
// stack are writable AND executable, so code-injection attacks are possible
// and must be stopped by system call checking, not by W^X.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "binary/image.h"
#include "util/error.h"

namespace asc::vm {

class Memory {
 public:
  Memory();

  /// Copy the image's sections into the address space.
  void load_image(const binary::Image& image);

  std::uint8_t r8(std::uint32_t addr) const;
  void w8(std::uint32_t addr, std::uint8_t value);
  std::uint32_t r32(std::uint32_t addr) const;
  void w32(std::uint32_t addr, std::uint32_t value);

  /// Bulk accessors. Throw GuestFault when any byte is out of range.
  std::vector<std::uint8_t> read_bytes(std::uint32_t addr, std::uint32_t n) const;
  /// Allocation-free overload: copy `n` bytes into `out` (which must hold at
  /// least `n`). The checker's hot path reads MACs and AS headers through
  /// this instead of n byte-at-a-time r8() calls.
  void read_bytes(std::uint32_t addr, std::uint32_t n, std::uint8_t* out) const;
  void write_bytes(std::uint32_t addr, std::span<const std::uint8_t> bytes);

  /// NUL-terminated string, at most `max_len` bytes (fault if unterminated).
  std::string read_cstr(std::uint32_t addr, std::uint32_t max_len = 4096) const;

  /// Read-only view of the whole space (used by the VM instruction fetch).
  std::span<const std::uint8_t> flat() const { return bytes_; }
  static std::size_t index_of(std::uint32_t addr);
  bool in_range(std::uint32_t addr, std::uint32_t n = 1) const;

  // ---- write-watch (verified-call cache invalidation) ----
  // The kernel registers the byte ranges backing a cached verification
  // (call MAC, AS headers/bodies, pred-set blob); any write overlapping a
  // watched range invokes the callback BEFORE the bytes change, so the
  // cache can evict. A [min,max) envelope over all ranges keeps the common
  // store (stack/heap, far from .asdata) a two-compare rejection.
  // Ranges are refcounted: watch/unwatch of the same {addr, len} nest, and
  // the range stops firing once every registration is gone -- so evicted
  // cache entries can return their ranges and the watch set tracks live
  // entries instead of growing for the life of the process.
  using WriteWatchFn = std::function<void(std::uint32_t addr, std::uint32_t len)>;
  void set_write_watch(WriteWatchFn fn) { on_watched_write_ = std::move(fn); }
  bool has_write_watch() const { return static_cast<bool>(on_watched_write_); }
  /// Register a range (increments the refcount of an identical range).
  void watch(std::uint32_t addr, std::uint32_t len);
  /// Undo one watch() of the identical range; removes it at refcount zero.
  void unwatch(std::uint32_t addr, std::uint32_t len);
  void clear_watches();
  std::size_t watch_count() const { return watches_.size(); }

  /// Watch-range accounting: the bookkeeping-balance surface the chaos
  /// engine's invariant oracles audit. After process teardown every
  /// registration must have been returned (live_ranges == live_refs == 0,
  /// registered == released) -- a leak here means a cache/shadow eviction
  /// path forgot to unwatch.
  struct WatchStats {
    std::size_t live_ranges = 0;     // distinct ranges currently watched
    std::uint64_t live_refs = 0;     // sum of refcounts over live ranges
    std::uint64_t peak_ranges = 0;   // high-water mark of live_ranges
    std::uint64_t registered = 0;    // watch() calls that took a reference
    std::uint64_t released = 0;      // unwatch() calls that matched one
  };
  WatchStats watch_stats() const;

  // ---- exec-watch (predecoded-code invalidation) ----
  // Separate channel from the refcounted data watches above: the threaded
  // engine (vm/engine.cpp) must hear about writes into predecoded code spans
  // without perturbing the WatchStats ledger the chaos oracles audit. The
  // engine maintains its own page index; Memory keeps only a grow-only
  // [min,max) envelope so the common data store is a two-compare rejection.
  // The callback fires BEFORE the bytes change, like the data watch.
  using ExecWatchFn = std::function<void(std::uint32_t addr, std::uint32_t len)>;
  void set_exec_watch(ExecWatchFn fn) { on_exec_write_ = std::move(fn); }
  /// Grow the exec envelope to cover [lo, hi). Never shrinks; a stale
  /// envelope only costs spurious callbacks, which the engine filters.
  void expand_exec_envelope(std::uint32_t lo, std::uint32_t hi) {
    if (lo < exec_min_) exec_min_ = lo;
    if (hi > exec_max_) exec_max_ = hi;
  }

 private:
  struct WatchRange {
    std::uint32_t addr;
    std::uint32_t len;
    std::uint32_t refs;
  };
  void check(std::uint32_t addr, std::uint32_t n) const;
  void notify_write(std::uint32_t addr, std::uint32_t n);
  void recompute_watch_envelope();
  std::vector<std::uint8_t> bytes_;
  WriteWatchFn on_watched_write_;
  ExecWatchFn on_exec_write_;
  std::uint32_t exec_min_ = 0xffffffffu;
  std::uint32_t exec_max_ = 0;  // exclusive; 0 = no exec watch
  std::vector<WatchRange> watches_;
  std::uint64_t watch_peak_ = 0;
  std::uint64_t watch_registered_ = 0;
  std::uint64_t watch_released_ = 0;
  std::uint32_t watch_min_ = 0xffffffffu;
  std::uint32_t watch_max_ = 0;  // exclusive; 0 = no watches
};

}  // namespace asc::vm
