#include "vm/engine.h"

#include "isa/isa.h"
#include "os/kernel.h"
#include "os/process.h"
#include "util/error.h"
#include "vm/cpu.h"
#include "vm/memory.h"
#include "vm/predecode.h"

// GNU label-values give each micro-op its own indirect branch (better
// host branch prediction than one shared switch dispatch); the switch
// fallback keeps the engine portable and gives the differential tests a
// second dispatch flavor to pit against the reference interpreter.
#if defined(__GNUC__) && !defined(ASC_NO_COMPUTED_GOTO)
#define ASC_COMPUTED_GOTO 1
#else
#define ASC_COMPUTED_GOTO 0
#endif

namespace asc::vm {

namespace {

inline std::int32_t signed_of(std::uint32_t v) { return static_cast<std::int32_t>(v); }

inline bool cc_holds(std::uint8_t cc, bool zf, bool nf) {
  switch (static_cast<Cc>(cc)) {
    case Cc::Z: return zf;
    case Cc::Nz: return !zf;
    case Cc::Lt: return nf;
    case Cc::Le: return nf || zf;
    case Cc::Gt: return !nf && !zf;
    case Cc::Ge: return !nf;
  }
  return false;
}

}  // namespace

// The handler bodies below are written once and expanded under either
// dispatch flavor. Architectural-equivalence invariants each handler
// maintains against Cpu::step (the reference):
//
//   * The per-op prologue (VM_DISPATCH) performs the machine loop's
//     cycle-limit check, then charges the op's modeled cost and counts the
//     instruction BEFORE the handler body -- the reference's pre-charge
//     order, so a faulting instruction is still charged.
//   * cpu.pc is stale inside a block (that is the speedup). Every handler
//     that can fault or invoke a callback (memory access, syscall)
//     materializes cpu.pc = op->pc first, so thrown GuestFaults and
//     watch-callback observers see the reference pc.
//   * Fused pairs re-run the limit check and charge the second half
//     between the halves, exiting at mid_pc -- exactly where the reference
//     loop would stop between the two instructions.
//   * Handlers that write guest memory without ending the block re-check
//     b->valid: a self-modifying store demotes to a fresh decode at the
//     architectural next_pc.
EngineExit run_predecoded(os::Process& p, os::Kernel& kernel, std::uint64_t cycle_limit) {
  auto& cpu = p.cpu;
  auto& mem = p.mem;
  auto& regs = cpu.regs;
  PredecodeCache& cache = p.predecode;
  const os::CostModel& cost = kernel.cost();

  cache.attach(mem);
  if (!p.running) return EngineExit::Stopped;

  PredecodedBlock* b = &cache.lookup(cpu.pc, mem, cost);
  const MicroOp* ops = b->ops.data();
  std::size_t i = 0;
  const MicroOp* op = nullptr;
  std::uint32_t tmp = 0;

#if ASC_COMPUTED_GOTO
  // Order must match the UOp enum exactly.
  static const void* const kTable[kNumUOps] = {
      &&lbl_Nop,      &&lbl_Halt,     &&lbl_Syscall,  &&lbl_Movi,     &&lbl_Lea,
      &&lbl_Mov,      &&lbl_Add,      &&lbl_Sub,      &&lbl_Mul,      &&lbl_Div,
      &&lbl_Mod,      &&lbl_And,      &&lbl_Or,       &&lbl_Xor,      &&lbl_Shl,
      &&lbl_Shr,      &&lbl_Addi,     &&lbl_Subi,     &&lbl_Muli,     &&lbl_Andi,
      &&lbl_Ori,      &&lbl_Xori,     &&lbl_Shli,     &&lbl_Shri,     &&lbl_Not,
      &&lbl_Neg,      &&lbl_Cmp,      &&lbl_Cmpi,     &&lbl_Load,     &&lbl_Store,
      &&lbl_Loadb,    &&lbl_Storeb,   &&lbl_Push,     &&lbl_Pop,      &&lbl_Call,
      &&lbl_Callr,    &&lbl_Ret,      &&lbl_Jmp,      &&lbl_Jmpr,     &&lbl_Jz,
      &&lbl_Jnz,      &&lbl_Jlt,      &&lbl_Jle,      &&lbl_Jgt,      &&lbl_Jge,
      &&lbl_CmpJcc,   &&lbl_CmpiJcc,  &&lbl_MoviSyscall, &&lbl_LoadCmpi,
      &&lbl_LoadAddi, &&lbl_LoadSubi, &&lbl_PushCall, &&lbl_Chain,    &&lbl_Slow,
  };
#define VM_DISPATCH()                                       \
  do {                                                      \
    op = &ops[i];                                           \
    if (p.cycles > cycle_limit) {                           \
      cpu.pc = op->pc;                                      \
      return EngineExit::CycleLimit;                        \
    }                                                       \
    p.cycles += op->cost;                                   \
    ++p.instr_count;                                        \
    goto* kTable[static_cast<std::size_t>(op->uop)];        \
  } while (0)
#define VM_CASE(name) lbl_##name:
#else
#define VM_DISPATCH() goto vm_dispatch
#define VM_CASE(name) case UOp::name:
#endif

#define VM_FALL() \
  do {            \
    ++i;          \
    VM_DISPATCH(); \
  } while (0)
#define VM_GOTO_BLOCK(target)                              \
  do {                                                     \
    b = &cache.next_block(*b, (target), mem, cost);        \
    ops = b->ops.data();                                   \
    i = 0;                                                 \
    VM_DISPATCH();                                         \
  } while (0)
#define VM_RELOOKUP(target)                                \
  do {                                                     \
    b = &cache.lookup((target), mem, cost);                \
    ops = b->ops.data();                                   \
    i = 0;                                                 \
    VM_DISPATCH();                                         \
  } while (0)
  // Inter-half boundary of a fused pair: the reference loop would check the
  // limit, then pre-charge the second instruction.
#define VM_SECOND_HALF()                                   \
  do {                                                     \
    if (p.cycles > cycle_limit) {                          \
      cpu.pc = op->mid_pc;                                 \
      return EngineExit::CycleLimit;                       \
    }                                                      \
    p.cycles += op->cost2;                                 \
    ++p.instr_count;                                       \
  } while (0)

#if ASC_COMPUTED_GOTO
  VM_DISPATCH();
#else
vm_dispatch:
  op = &ops[i];
  if (p.cycles > cycle_limit) {
    cpu.pc = op->pc;
    return EngineExit::CycleLimit;
  }
  p.cycles += op->cost;
  ++p.instr_count;
  switch (op->uop) {
#endif

  VM_CASE(Nop) { VM_FALL(); }
  VM_CASE(Halt) {
    p.running = false;
    p.exit_code = Cpu::kHaltExitCode;
    p.violation_detail = "halt instruction";
    cpu.pc = op->pc;
    return EngineExit::Stopped;
  }
  VM_CASE(Syscall) {
    cpu.pc = op->next_pc;
    kernel.on_syscall(p, op->pc);
    if (!p.running) return EngineExit::Stopped;
    VM_RELOOKUP(cpu.pc);
  }
  VM_CASE(Movi) {
    regs[op->rd] = op->imm;
    VM_FALL();
  }
  VM_CASE(Lea) {
    regs[op->rd] = op->imm;
    VM_FALL();
  }
  VM_CASE(Mov) {
    regs[op->rd] = regs[op->rs];
    VM_FALL();
  }
  VM_CASE(Add) {
    regs[op->rd] += regs[op->rs];
    VM_FALL();
  }
  VM_CASE(Sub) {
    regs[op->rd] -= regs[op->rs];
    VM_FALL();
  }
  VM_CASE(Mul) {
    regs[op->rd] *= regs[op->rs];
    VM_FALL();
  }
  VM_CASE(Div) {
    if (regs[op->rs] == 0) {
      cpu.pc = op->pc;
      throw GuestFault("division by zero");
    }
    regs[op->rd] =
        static_cast<std::uint32_t>(signed_of(regs[op->rd]) / signed_of(regs[op->rs]));
    VM_FALL();
  }
  VM_CASE(Mod) {
    if (regs[op->rs] == 0) {
      cpu.pc = op->pc;
      throw GuestFault("division by zero");
    }
    regs[op->rd] =
        static_cast<std::uint32_t>(signed_of(regs[op->rd]) % signed_of(regs[op->rs]));
    VM_FALL();
  }
  VM_CASE(And) {
    regs[op->rd] &= regs[op->rs];
    VM_FALL();
  }
  VM_CASE(Or) {
    regs[op->rd] |= regs[op->rs];
    VM_FALL();
  }
  VM_CASE(Xor) {
    regs[op->rd] ^= regs[op->rs];
    VM_FALL();
  }
  VM_CASE(Shl) {
    regs[op->rd] <<= regs[op->rs] & 31u;
    VM_FALL();
  }
  VM_CASE(Shr) {
    regs[op->rd] >>= regs[op->rs] & 31u;
    VM_FALL();
  }
  VM_CASE(Addi) {
    regs[op->rd] += op->imm;
    VM_FALL();
  }
  VM_CASE(Subi) {
    regs[op->rd] -= op->imm;
    VM_FALL();
  }
  VM_CASE(Muli) {
    regs[op->rd] *= op->imm;
    VM_FALL();
  }
  VM_CASE(Andi) {
    regs[op->rd] &= op->imm;
    VM_FALL();
  }
  VM_CASE(Ori) {
    regs[op->rd] |= op->imm;
    VM_FALL();
  }
  VM_CASE(Xori) {
    regs[op->rd] ^= op->imm;
    VM_FALL();
  }
  VM_CASE(Shli) {
    regs[op->rd] <<= op->imm & 31u;
    VM_FALL();
  }
  VM_CASE(Shri) {
    regs[op->rd] >>= op->imm & 31u;
    VM_FALL();
  }
  VM_CASE(Not) {
    regs[op->rd] = ~regs[op->rd];
    VM_FALL();
  }
  VM_CASE(Neg) {
    regs[op->rd] = static_cast<std::uint32_t>(-signed_of(regs[op->rd]));
    VM_FALL();
  }
  VM_CASE(Cmp) {
    cpu.zf = regs[op->rd] == regs[op->rs];
    cpu.nf = signed_of(regs[op->rd]) < signed_of(regs[op->rs]);
    VM_FALL();
  }
  VM_CASE(Cmpi) {
    cpu.zf = regs[op->rd] == op->imm;
    cpu.nf = signed_of(regs[op->rd]) < signed_of(op->imm);
    VM_FALL();
  }
  VM_CASE(Load) {
    cpu.pc = op->pc;
    regs[op->rd] = mem.r32(regs[op->rs] + op->imm);
    VM_FALL();
  }
  VM_CASE(Store) {
    cpu.pc = op->pc;
    mem.w32(regs[op->rs] + op->imm, regs[op->rd]);
    if (!b->valid) VM_RELOOKUP(op->next_pc);
    VM_FALL();
  }
  VM_CASE(Loadb) {
    cpu.pc = op->pc;
    regs[op->rd] = mem.r8(regs[op->rs] + op->imm);
    VM_FALL();
  }
  VM_CASE(Storeb) {
    cpu.pc = op->pc;
    mem.w8(regs[op->rs] + op->imm, static_cast<std::uint8_t>(regs[op->rd]));
    if (!b->valid) VM_RELOOKUP(op->next_pc);
    VM_FALL();
  }
  VM_CASE(Push) {
    cpu.pc = op->pc;
    regs[isa::kSp] -= 4;
    mem.w32(regs[isa::kSp], regs[op->rd]);
    if (!b->valid) VM_RELOOKUP(op->next_pc);
    VM_FALL();
  }
  VM_CASE(Pop) {
    cpu.pc = op->pc;
    regs[op->rd] = mem.r32(regs[isa::kSp]);
    regs[isa::kSp] += 4;
    VM_FALL();
  }
  VM_CASE(Call) {
    cpu.pc = op->pc;
    regs[isa::kSp] -= 4;
    mem.w32(regs[isa::kSp], op->next_pc);
    cpu.pc = op->imm;
    VM_GOTO_BLOCK(op->imm);
  }
  VM_CASE(Callr) {
    cpu.pc = op->pc;
    regs[isa::kSp] -= 4;
    mem.w32(regs[isa::kSp], op->next_pc);
    cpu.pc = regs[op->rd];
    VM_GOTO_BLOCK(cpu.pc);
  }
  VM_CASE(Ret) {
    cpu.pc = op->pc;
    tmp = mem.r32(regs[isa::kSp]);
    regs[isa::kSp] += 4;
    cpu.pc = tmp;
    VM_GOTO_BLOCK(tmp);
  }
  VM_CASE(Jmp) {
    cpu.pc = op->imm;
    VM_GOTO_BLOCK(op->imm);
  }
  VM_CASE(Jmpr) {
    cpu.pc = regs[op->rd];
    VM_GOTO_BLOCK(cpu.pc);
  }
  VM_CASE(Jz) {
    cpu.pc = cpu.zf ? op->imm : op->next_pc;
    VM_GOTO_BLOCK(cpu.pc);
  }
  VM_CASE(Jnz) {
    cpu.pc = !cpu.zf ? op->imm : op->next_pc;
    VM_GOTO_BLOCK(cpu.pc);
  }
  VM_CASE(Jlt) {
    cpu.pc = cpu.nf ? op->imm : op->next_pc;
    VM_GOTO_BLOCK(cpu.pc);
  }
  VM_CASE(Jle) {
    cpu.pc = (cpu.nf || cpu.zf) ? op->imm : op->next_pc;
    VM_GOTO_BLOCK(cpu.pc);
  }
  VM_CASE(Jgt) {
    cpu.pc = (!cpu.nf && !cpu.zf) ? op->imm : op->next_pc;
    VM_GOTO_BLOCK(cpu.pc);
  }
  VM_CASE(Jge) {
    cpu.pc = !cpu.nf ? op->imm : op->next_pc;
    VM_GOTO_BLOCK(cpu.pc);
  }
  VM_CASE(CmpJcc) {
    cpu.zf = regs[op->rd] == regs[op->rs];
    cpu.nf = signed_of(regs[op->rd]) < signed_of(regs[op->rs]);
    VM_SECOND_HALF();
    cpu.pc = cc_holds(op->aux, cpu.zf, cpu.nf) ? op->imm2 : op->next_pc;
    VM_GOTO_BLOCK(cpu.pc);
  }
  VM_CASE(CmpiJcc) {
    cpu.zf = regs[op->rd] == op->imm;
    cpu.nf = signed_of(regs[op->rd]) < signed_of(op->imm);
    VM_SECOND_HALF();
    cpu.pc = cc_holds(op->aux, cpu.zf, cpu.nf) ? op->imm2 : op->next_pc;
    VM_GOTO_BLOCK(cpu.pc);
  }
  VM_CASE(MoviSyscall) {
    regs[op->rd] = op->imm;
    VM_SECOND_HALF();
    cpu.pc = op->next_pc;
    kernel.on_syscall(p, op->mid_pc);
    if (!p.running) return EngineExit::Stopped;
    VM_RELOOKUP(cpu.pc);
  }
  VM_CASE(LoadCmpi) {
    cpu.pc = op->pc;
    regs[op->rd] = mem.r32(regs[op->rs] + op->imm);
    VM_SECOND_HALF();
    cpu.zf = regs[op->rd] == op->imm2;
    cpu.nf = signed_of(regs[op->rd]) < signed_of(op->imm2);
    VM_FALL();
  }
  VM_CASE(LoadAddi) {
    cpu.pc = op->pc;
    regs[op->rd] = mem.r32(regs[op->rs] + op->imm);
    VM_SECOND_HALF();
    regs[op->rd] += op->imm2;
    VM_FALL();
  }
  VM_CASE(LoadSubi) {
    cpu.pc = op->pc;
    regs[op->rd] = mem.r32(regs[op->rs] + op->imm);
    VM_SECOND_HALF();
    regs[op->rd] -= op->imm2;
    VM_FALL();
  }
  VM_CASE(PushCall) {
    cpu.pc = op->pc;
    regs[isa::kSp] -= 4;
    mem.w32(regs[isa::kSp], regs[op->rd]);
    // The push may have overwritten the fused call itself: finish the pair
    // as two plain instructions from a fresh decode at mid_pc.
    if (!b->valid) VM_RELOOKUP(op->mid_pc);
    VM_SECOND_HALF();
    cpu.pc = op->mid_pc;
    regs[isa::kSp] -= 4;
    mem.w32(regs[isa::kSp], op->next_pc);
    cpu.pc = op->imm2;
    VM_GOTO_BLOCK(op->imm2);
  }
  VM_CASE(Chain) {
    // Engine-internal block continuation: undo the prologue's instruction
    // count (cost is zero); no architectural effect.
    --p.instr_count;
    VM_GOTO_BLOCK(op->pc);
  }
  VM_CASE(Slow) {
    // Replay the reference interpreter for one instruction: reproduces the
    // exact fault type/message/charging for undecodable or out-of-range
    // pcs, then resumes threaded dispatch from wherever it lands.
    --p.instr_count;
    cpu.pc = op->pc;
    Cpu::step(p, kernel);
    if (!p.running) return EngineExit::Stopped;
    VM_RELOOKUP(cpu.pc);
  }

#if !ASC_COMPUTED_GOTO
    case UOp::kCount:
      break;
  }
#endif
  throw Error("engine: corrupt micro-op stream");  // not reachable

#undef VM_DISPATCH
#undef VM_CASE
#undef VM_FALL
#undef VM_GOTO_BLOCK
#undef VM_RELOOKUP
#undef VM_SECOND_HALF
}

}  // namespace asc::vm
