#include "tasm/assembler.h"

#include <set>

#include "isa/encode.h"
#include "util/error.h"
#include "util/hex.h"

namespace asc::tasm {

using isa::Instr;
using isa::Op;
using isa::Reg;

Assembler::Assembler(std::string program_name) : program_name_(std::move(program_name)) {}

Assembler::Func& Assembler::cur() {
  if (funcs_.empty()) throw Error("tasm: instruction emitted outside a function");
  return funcs_.back();
}

std::string Assembler::scoped(const std::string& label_name) const {
  if (!label_name.empty() && label_name[0] == '.') {
    if (funcs_.empty()) throw Error("tasm: local label outside a function");
    return funcs_.back().name + label_name;
  }
  return label_name;
}

void Assembler::func(const std::string& name) {
  for (const auto& f : funcs_) {
    if (f.name == name) throw Error("tasm: duplicate function " + name);
  }
  funcs_.push_back(Func{name, {}, {}});
}

void Assembler::label(const std::string& name) {
  auto& f = cur();
  const std::string full = scoped(name);
  if (f.labels.count(full) != 0) throw Error("tasm: duplicate label " + full);
  f.labels[full] = f.items.size();
}

void Assembler::emit(Instr ins, std::string symref) {
  cur().items.push_back(Item{ins, std::move(symref), {}, false});
}

void Assembler::nop() { emit({Op::Nop}); }
void Assembler::halt() { emit({Op::Halt}); }
void Assembler::syscall_() { emit({Op::Syscall}); }

void Assembler::movi(Reg rd, std::uint32_t imm) { emit({Op::Movi, rd, 0, imm}); }
void Assembler::mov(Reg rd, Reg rs) { emit({Op::Mov, rd, rs, 0}); }
void Assembler::add(Reg rd, Reg rs) { emit({Op::Add, rd, rs, 0}); }
void Assembler::sub(Reg rd, Reg rs) { emit({Op::Sub, rd, rs, 0}); }
void Assembler::mul(Reg rd, Reg rs) { emit({Op::Mul, rd, rs, 0}); }
void Assembler::div(Reg rd, Reg rs) { emit({Op::Div, rd, rs, 0}); }
void Assembler::mod(Reg rd, Reg rs) { emit({Op::Mod, rd, rs, 0}); }
void Assembler::and_(Reg rd, Reg rs) { emit({Op::And, rd, rs, 0}); }
void Assembler::or_(Reg rd, Reg rs) { emit({Op::Or, rd, rs, 0}); }
void Assembler::xor_(Reg rd, Reg rs) { emit({Op::Xor, rd, rs, 0}); }
void Assembler::shl(Reg rd, Reg rs) { emit({Op::Shl, rd, rs, 0}); }
void Assembler::shr(Reg rd, Reg rs) { emit({Op::Shr, rd, rs, 0}); }
void Assembler::addi(Reg rd, std::uint32_t imm) { emit({Op::Addi, rd, 0, imm}); }
void Assembler::subi(Reg rd, std::uint32_t imm) { emit({Op::Subi, rd, 0, imm}); }
void Assembler::muli(Reg rd, std::uint32_t imm) { emit({Op::Muli, rd, 0, imm}); }
void Assembler::andi(Reg rd, std::uint32_t imm) { emit({Op::Andi, rd, 0, imm}); }
void Assembler::ori(Reg rd, std::uint32_t imm) { emit({Op::Ori, rd, 0, imm}); }
void Assembler::xori(Reg rd, std::uint32_t imm) { emit({Op::Xori, rd, 0, imm}); }
void Assembler::shli(Reg rd, std::uint32_t imm) { emit({Op::Shli, rd, 0, imm}); }
void Assembler::shri(Reg rd, std::uint32_t imm) { emit({Op::Shri, rd, 0, imm}); }
void Assembler::not_(Reg rd) { emit({Op::Not, rd, 0, 0}); }
void Assembler::neg(Reg rd) { emit({Op::Neg, rd, 0, 0}); }
void Assembler::cmp(Reg rd, Reg rs) { emit({Op::Cmp, rd, rs, 0}); }
void Assembler::cmpi(Reg rd, std::uint32_t imm) { emit({Op::Cmpi, rd, 0, imm}); }

void Assembler::load(Reg rd, Reg rs, std::int32_t off) {
  emit({Op::Load, rd, rs, static_cast<std::uint32_t>(off)});
}
void Assembler::store(Reg rs_base, std::int32_t off, Reg rd_value) {
  emit({Op::Store, rd_value, rs_base, static_cast<std::uint32_t>(off)});
}
void Assembler::loadb(Reg rd, Reg rs, std::int32_t off) {
  emit({Op::Loadb, rd, rs, static_cast<std::uint32_t>(off)});
}
void Assembler::storeb(Reg rs_base, std::int32_t off, Reg rd_value) {
  emit({Op::Storeb, rd_value, rs_base, static_cast<std::uint32_t>(off)});
}
void Assembler::push(Reg r) { emit({Op::Push, r, 0, 0}); }
void Assembler::pop(Reg r) { emit({Op::Pop, r, 0, 0}); }

void Assembler::lea(Reg rd, const std::string& sym) {
  emit({Op::Lea, rd, 0, 0}, scoped(sym));
}

void Assembler::call(const std::string& fn) { emit({Op::Call, 0, 0, 0}, fn); }
void Assembler::callr(Reg r) { emit({Op::Callr, r, 0, 0}); }
void Assembler::ret() { emit({Op::Ret}); }
void Assembler::jmp(const std::string& lbl) { emit({Op::Jmp, 0, 0, 0}, scoped(lbl)); }
void Assembler::jz(const std::string& lbl) { emit({Op::Jz, 0, 0, 0}, scoped(lbl)); }
void Assembler::jnz(const std::string& lbl) { emit({Op::Jnz, 0, 0, 0}, scoped(lbl)); }
void Assembler::jlt(const std::string& lbl) { emit({Op::Jlt, 0, 0, 0}, scoped(lbl)); }
void Assembler::jle(const std::string& lbl) { emit({Op::Jle, 0, 0, 0}, scoped(lbl)); }
void Assembler::jgt(const std::string& lbl) { emit({Op::Jgt, 0, 0, 0}, scoped(lbl)); }
void Assembler::jge(const std::string& lbl) { emit({Op::Jge, 0, 0, 0}, scoped(lbl)); }
void Assembler::jmpr(Reg r) { emit({Op::Jmpr, r, 0, 0}); }

void Assembler::raw(std::vector<std::uint8_t> bytes) {
  cur().items.push_back(Item{{}, {}, std::move(bytes), true});
}

void Assembler::rodata_cstr(const std::string& sym, const std::string& value) {
  std::vector<std::uint8_t> bytes(value.begin(), value.end());
  bytes.push_back(0);
  objects_.push_back(DataObj{sym, binary::SectionKind::Rodata, std::move(bytes), 0, {}});
}

void Assembler::rodata_bytes(const std::string& sym, std::vector<std::uint8_t> bytes) {
  objects_.push_back(DataObj{sym, binary::SectionKind::Rodata, std::move(bytes), 0, {}});
}

void Assembler::data_words(const std::string& sym, const std::vector<std::uint32_t>& words) {
  std::vector<std::uint8_t> bytes;
  for (auto w : words) util::put_u32(bytes, w);
  objects_.push_back(DataObj{sym, binary::SectionKind::Data, std::move(bytes), 0, {}});
}

void Assembler::data_bytes(const std::string& sym, std::vector<std::uint8_t> bytes) {
  objects_.push_back(DataObj{sym, binary::SectionKind::Data, std::move(bytes), 0, {}});
}

void Assembler::data_ptr(const std::string& sym, const std::string& target) {
  DataObj obj{sym, binary::SectionKind::Data, {0, 0, 0, 0}, 0, {}};
  obj.ptr_slots.emplace_back(0u, target);
  objects_.push_back(std::move(obj));
}

void Assembler::bss(const std::string& sym, std::uint32_t size) {
  objects_.push_back(DataObj{sym, binary::SectionKind::Bss, {}, size, {}});
}

bool Assembler::has_func(const std::string& name) const {
  for (const auto& f : funcs_) {
    if (f.name == name) return true;
  }
  return false;
}

binary::Image Assembler::link(const std::string& entry) {
  binary::Image img;
  img.name = program_name_;
  img.relocatable = true;
  // Image::section() creates sections on demand with push_back; reserve so
  // the references we hold below survive.
  img.sections.reserve(8);

  // ---- pass 1: lay out text (assign an address to every item) ----
  std::map<std::string, std::uint32_t> addr_of;  // functions, labels, data
  std::uint32_t pc = binary::section_base(binary::SectionKind::Text);

  struct Placed {
    const Item* item;
    std::uint32_t addr;
  };
  std::vector<Placed> placed;

  for (const auto& f : funcs_) {
    if (addr_of.count(f.name) != 0) throw Error("tasm: duplicate symbol " + f.name);
    addr_of[f.name] = pc;
    const std::uint32_t fstart = pc;
    std::vector<std::uint32_t> item_addr(f.items.size() + 1, 0);
    for (std::size_t i = 0; i < f.items.size(); ++i) {
      item_addr[i] = pc;
      const Item& it = f.items[i];
      pc += it.is_raw ? static_cast<std::uint32_t>(it.raw_bytes.size())
                      : static_cast<std::uint32_t>(isa::size_of(it.ins.op));
      placed.push_back(Placed{&it, item_addr[i]});
    }
    item_addr[f.items.size()] = pc;
    for (const auto& [lbl, idx] : f.labels) {
      if (addr_of.count(lbl) != 0) throw Error("tasm: duplicate label " + lbl);
      addr_of[lbl] = item_addr[idx];
    }
    img.symbols.push_back(binary::Symbol{f.name, fstart, pc - fstart, binary::SymbolKind::Function});
  }
  if (pc - binary::section_base(binary::SectionKind::Text) >
      binary::section_limit(binary::SectionKind::Text)) {
    throw Error("tasm: .text exceeds section window");
  }

  // ---- pass 1b: lay out data objects ----
  std::uint32_t ro = binary::section_base(binary::SectionKind::Rodata);
  std::uint32_t da = binary::section_base(binary::SectionKind::Data);
  std::uint32_t bs = binary::section_base(binary::SectionKind::Bss);
  for (const auto& obj : objects_) {
    if (addr_of.count(obj.name) != 0) throw Error("tasm: duplicate symbol " + obj.name);
    std::uint32_t* cursor = nullptr;
    switch (obj.section) {
      case binary::SectionKind::Rodata: cursor = &ro; break;
      case binary::SectionKind::Data: cursor = &da; break;
      case binary::SectionKind::Bss: cursor = &bs; break;
      default: throw Error("tasm: bad data section");
    }
    // Word-align every object.
    *cursor = (*cursor + 3u) & ~3u;
    addr_of[obj.name] = *cursor;
    const std::uint32_t sz = obj.section == binary::SectionKind::Bss
                                 ? obj.bss_size
                                 : static_cast<std::uint32_t>(obj.bytes.size());
    img.symbols.push_back(binary::Symbol{obj.name, *cursor, sz, binary::SymbolKind::Object});
    *cursor += sz;
  }

  // ---- pass 2: emit text with resolved addresses and relocations ----
  auto resolve = [&](const std::string& sym) -> std::uint32_t {
    auto it = addr_of.find(sym);
    if (it == addr_of.end()) throw Error("tasm: undefined symbol " + sym + " in " + program_name_);
    return it->second;
  };

  auto& text = img.section(binary::SectionKind::Text);
  for (const auto& p : placed) {
    const Item& it = *p.item;
    if (it.is_raw) {
      util::put_bytes(text.bytes, it.raw_bytes);
      continue;
    }
    isa::Instr ins = it.ins;
    bool is_addr_field = false;
    if (!it.symref.empty()) {
      ins.imm = resolve(it.symref);
      is_addr_field = true;
    }
    const std::size_t before = text.bytes.size();
    isa::encode(ins, text.bytes);
    if (is_addr_field) {
      const std::uint32_t slot =
          p.addr + static_cast<std::uint32_t>(isa::imm_offset(ins.op));
      img.relocs.push_back(binary::Reloc{slot});
      (void)before;
    }
  }

  // ---- pass 2b: emit data sections ----
  auto& rodata = img.section(binary::SectionKind::Rodata);
  auto& data = img.section(binary::SectionKind::Data);
  auto& bss_sec = img.section(binary::SectionKind::Bss);
  for (const auto& obj : objects_) {
    const std::uint32_t addr = addr_of[obj.name];
    binary::Section* sec = nullptr;
    switch (obj.section) {
      case binary::SectionKind::Rodata: sec = &rodata; break;
      case binary::SectionKind::Data: sec = &data; break;
      case binary::SectionKind::Bss: sec = &bss_sec; break;
      default: throw Error("tasm: bad data section");
    }
    if (obj.section == binary::SectionKind::Bss) {
      bss_sec.bss_size = addr + obj.bss_size - bss_sec.vaddr();
      continue;
    }
    // Pad up to the object's (aligned) offset.
    const std::uint32_t off = addr - sec->vaddr();
    if (sec->bytes.size() < off) sec->bytes.resize(off, 0);
    std::vector<std::uint8_t> bytes = obj.bytes;
    for (const auto& [slot_off, target] : obj.ptr_slots) {
      util::set_u32(bytes, slot_off, resolve(target));
      img.relocs.push_back(binary::Reloc{addr + slot_off});
    }
    util::put_bytes(sec->bytes, bytes);
  }

  img.entry = resolve(entry);
  return img;
}

}  // namespace asc::tasm
