// tasm -- a programmatic assembler/static-linker for TSA guest programs.
//
// Guest applications (the toy libc plus the benchmark programs of Tables 1-6)
// are written in C++ against this builder API, which plays the role of
// `gcc ... -static -Wl,-q` in the paper: it emits a *relocatable*, statically
// linked TXE image, with symbols for every function and data object and a
// relocation entry for every 32-bit slot that holds an absolute address
// (LEA immediates, CALL/JMP/Jcc targets, and pointer words in .data).
//
// Label scoping: names beginning with '.' are local to the current function
// (internally prefixed with the function name); all other names are global.
//
// Usage sketch:
//   Assembler a("hello");
//   a.func("main");
//   a.lea(1, "msg");
//   a.call("print");
//   a.movi(0, 0);
//   a.ret();
//   a.rodata_cstr("msg", "hello, world\n");
//   emit_libc(a, personality);          // from apps/libtoy.h
//   binary::Image img = a.link();
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "binary/image.h"
#include "isa/isa.h"

namespace asc::tasm {

class Assembler {
 public:
  explicit Assembler(std::string program_name);

  // ---- functions and labels ----

  /// Begin a new function. Implicitly ends the previous one.
  void func(const std::string& name);

  /// Define a label at the current position. Names starting with '.' are
  /// function-local.
  void label(const std::string& name);

  // ---- instructions ----
  void nop();
  void halt();
  void syscall_();

  void movi(isa::Reg rd, std::uint32_t imm);
  void mov(isa::Reg rd, isa::Reg rs);
  void add(isa::Reg rd, isa::Reg rs);
  void sub(isa::Reg rd, isa::Reg rs);
  void mul(isa::Reg rd, isa::Reg rs);
  void div(isa::Reg rd, isa::Reg rs);
  void mod(isa::Reg rd, isa::Reg rs);
  void and_(isa::Reg rd, isa::Reg rs);
  void or_(isa::Reg rd, isa::Reg rs);
  void xor_(isa::Reg rd, isa::Reg rs);
  void shl(isa::Reg rd, isa::Reg rs);
  void shr(isa::Reg rd, isa::Reg rs);
  void addi(isa::Reg rd, std::uint32_t imm);
  void subi(isa::Reg rd, std::uint32_t imm);
  void muli(isa::Reg rd, std::uint32_t imm);
  void andi(isa::Reg rd, std::uint32_t imm);
  void ori(isa::Reg rd, std::uint32_t imm);
  void xori(isa::Reg rd, std::uint32_t imm);
  void shli(isa::Reg rd, std::uint32_t imm);
  void shri(isa::Reg rd, std::uint32_t imm);
  void not_(isa::Reg rd);
  void neg(isa::Reg rd);
  void cmp(isa::Reg rd, isa::Reg rs);
  void cmpi(isa::Reg rd, std::uint32_t imm);

  void load(isa::Reg rd, isa::Reg rs, std::int32_t off = 0);
  void store(isa::Reg rs_base, std::int32_t off, isa::Reg rd_value);
  void loadb(isa::Reg rd, isa::Reg rs, std::int32_t off = 0);
  void storeb(isa::Reg rs_base, std::int32_t off, isa::Reg rd_value);
  void push(isa::Reg r);
  void pop(isa::Reg r);

  /// rd = address of a symbol or label (emits a relocation).
  void lea(isa::Reg rd, const std::string& sym);

  void call(const std::string& fn);
  void callr(isa::Reg r);
  void ret();
  void jmp(const std::string& lbl);
  void jz(const std::string& lbl);
  void jnz(const std::string& lbl);
  void jlt(const std::string& lbl);
  void jle(const std::string& lbl);
  void jgt(const std::string& lbl);
  void jge(const std::string& lbl);
  void jmpr(isa::Reg r);

  /// Emit raw bytes into the instruction stream of the current function.
  /// Used to craft sequences the static disassembler cannot decode (the
  /// OpenBSD `close` stub of Table 2). The VM never executes these bytes if
  /// control flow jumps over them.
  void raw(std::vector<std::uint8_t> bytes);

  // ---- data ----
  void rodata_cstr(const std::string& sym, const std::string& value);
  void rodata_bytes(const std::string& sym, std::vector<std::uint8_t> bytes);
  void data_words(const std::string& sym, const std::vector<std::uint32_t>& words);
  void data_bytes(const std::string& sym, std::vector<std::uint8_t> bytes);
  /// A pointer-sized .data word holding the address of `target` (reloc'd).
  void data_ptr(const std::string& sym, const std::string& target);
  void bss(const std::string& sym, std::uint32_t size);

  /// True if a function with this name has been defined.
  bool has_func(const std::string& name) const;

  // ---- linking ----

  /// Resolve all references and produce a relocatable image. `entry` names
  /// the start function (default "_start"). Throws asc::Error on undefined
  /// or duplicate symbols.
  binary::Image link(const std::string& entry = "_start");

 private:
  struct Item {
    // Either an instruction (possibly with a symbolic immediate) or raw bytes.
    isa::Instr ins;
    std::string symref;  // non-empty: imm = address of this symbol at link time
    std::vector<std::uint8_t> raw_bytes;
    bool is_raw = false;
  };
  struct Func {
    std::string name;
    std::vector<Item> items;
    std::map<std::string, std::size_t> labels;  // label -> item index
  };
  struct DataObj {
    std::string name;
    binary::SectionKind section;
    std::vector<std::uint8_t> bytes;
    std::uint32_t bss_size = 0;
    std::vector<std::pair<std::uint32_t, std::string>> ptr_slots;  // offset -> target symbol
  };

  void emit(isa::Instr ins, std::string symref = {});
  Func& cur();
  std::string scoped(const std::string& label_name) const;

  std::string program_name_;
  std::vector<Func> funcs_;
  std::vector<DataObj> objects_;
};

}  // namespace asc::tasm
